"""AIG-to-k-LUT technology mapping on the shared priority-cut engine.

The paper's simulator operates on k-LUT networks while the sweeper
operates on AIGs, so a structural mapper bridges the two.  The mapper is
a classical multi-pass cut-based mapper in the style of ABC's ``if``:

1. a **depth pass** selects, for every node, the cut with the smallest
   arrival time (ties broken by leaf count) and records the mapping's
   depth;
2. an **area-flow pass** re-selects cuts to minimise estimated global
   area (area flow), constrained by per-node *required times* derived
   from the depth-pass mapping, so depth never degrades;
3. an **exact-area pass** walks the covered nodes with a reference
   counter, dereferences each node's current cut and greedily picks the
   candidate whose cone adds the fewest actual LUTs at the same
   required-time constraint.

Cut enumeration, fused cut functions and the structural-signature
function cache come from :mod:`repro.cuts`; the mapper never walks a
cone to compute a LUT function.  Every selected cut becomes a LUT whose
truth table is the cut's fused table.

Choice-aware mapping
--------------------

On a network carrying choice classes (see
:mod:`repro.networks.incremental`), every class member's cut set is the
class-merged view (:class:`~repro.cuts.engine.CutEngine` with
``use_choices``), so **all three passes** select per node among every
recorded implementation -- a depth-optimal alternative can win the depth
pass while an area-cheaper one wins exact area at another node.  The
passes iterate the network's ``choice_topological_order`` (a borrowed
cut's leaves may live anywhere in the class's merged fanin cone) and the
area-flow reference estimates are restricted to the PO-reachable
subject graph, so dangling alternative structures never distort the
sharing estimate.  The emitted k-LUT network is **choice-free**: the
selection resolves every class to one concrete implementation per
covered node.

The choice-aware run is additionally guarded by a *plain fallback*: the
same network is also mapped with choices disabled (exactly the plain
mapper's selection) and the choice selection only ships when it does
not regress -- mapping a choice-augmented network therefore never
yields more LUTs or a deeper network than plain mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..cuts import Cut, CutEngine, CutFunctionCache, aig_cone_table
from ..truthtable import TruthTable
from .aig import Aig
from .klut import KLutNetwork

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from ..resilience import Budget

__all__ = [
    "MappingStats",
    "MappingResult",
    "technology_map",
    "map_aig_to_klut",
    "aig_node_truth_table",
    "aig_literal_truth_table",
]

_INFINITY = float("inf")


def aig_node_truth_table(
    aig: Aig,
    node: int,
    leaves: Sequence[int],
    allow_unused_leaves: bool = False,
) -> TruthTable:
    """Truth table of an AIG node as a function of the cut ``leaves``.

    ``leaves`` are node indices; leaf ``i`` becomes input ``i`` of the
    resulting table.  The cone between ``node`` and the leaves must be
    bounded by the leaves; a leaf set that does not actually cut the
    cone (an unlisted PI reached, an out-of-range leaf, or a listed leaf
    the cone never reaches) raises :class:`ValueError` instead of
    silently producing a table over the wrong support.  Window-style
    callers that intentionally pass a superset of the support opt out
    with ``allow_unused_leaves=True``.
    """
    return aig_cone_table(aig, node, leaves, allow_unused_leaves=allow_unused_leaves)


def aig_literal_truth_table(
    aig: Aig,
    literal: int,
    leaves: Sequence[int],
    allow_unused_leaves: bool = False,
) -> TruthTable:
    """Truth table of a literal (node plus complement) over the cut ``leaves``."""
    table = aig_cone_table(aig, aig.node_of(literal), leaves, allow_unused_leaves=allow_unused_leaves)
    return ~table if aig.is_complemented(literal) else table


# ---------------------------------------------------------------------------
# Mapping statistics
# ---------------------------------------------------------------------------


@dataclass
class MappingStats:
    """Counters collected by one technology-mapping run."""

    k: int = 0
    cut_limit: int = 0
    num_luts: int = 0
    depth: int = 0
    num_edges: int = 0
    depth_pass_luts: int = 0
    area_flow_luts: int = 0
    exact_area_luts: int = 0
    cuts_enumerated: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_hit_rate: float = 0.0
    choice_classes: int = 0
    choice_alternatives: int = 0
    used_choices: bool = False
    passes: list[str] = field(default_factory=list)

    def as_details(self) -> dict[str, float]:
        """Flat numeric view for reports and benchmarks."""
        return {
            "num_luts": float(self.num_luts),
            "depth": float(self.depth),
            "num_edges": float(self.num_edges),
            "depth_pass_luts": float(self.depth_pass_luts),
            "area_flow_luts": float(self.area_flow_luts),
            "exact_area_luts": float(self.exact_area_luts),
            "cuts_enumerated": float(self.cuts_enumerated),
            "cache_hits": float(self.cache_hits),
            "cache_misses": float(self.cache_misses),
            "cache_hit_rate": self.cache_hit_rate,
            "choice_classes": float(self.choice_classes),
            "choice_alternatives": float(self.choice_alternatives),
            "used_choices": float(self.used_choices),
        }

    def __str__(self) -> str:
        choices = ""
        if self.choice_classes:
            outcome = "selected" if self.used_choices else "plain fallback"
            choices = f"; {self.choice_classes} choice classes, {outcome}"
        return (
            f"mapped to {self.num_luts} LUT{self.k}s, depth {self.depth}, "
            f"{self.num_edges} edges ({' -> '.join(self.passes)}; "
            f"cut cache hit rate {self.cache_hit_rate:.1%}{choices})"
        )


@dataclass
class MappingResult:
    """A mapped network plus the node map and the run's statistics."""

    network: KLutNetwork
    node_map: dict[int, int]
    stats: MappingStats


# ---------------------------------------------------------------------------
# The multi-pass mapper
# ---------------------------------------------------------------------------


class _Mapper:
    """One mapping run: cut selection state shared by the passes."""

    def __init__(
        self,
        aig: Aig,
        k: int,
        cut_limit: int,
        cache: CutFunctionCache | None,
        use_choices: bool = False,
        budget: "Budget | None" = None,
    ) -> None:
        self.aig = aig
        self.k = k
        self.budget = budget
        self.use_choices = use_choices and aig.has_choices
        # The choice-aware run doubles the priority-cut budget: class-
        # merged fanin sets produce more merge candidates, and at the
        # plain budget the smallest-first truncation starts dropping the
        # *subject* cuts -- measurably costing depth.  The plain
        # fallback run keeps the caller's budget, so its selection stays
        # bit-identical to a plain map.
        engine_cut_limit = 2 * cut_limit if self.use_choices else cut_limit
        self.engine = CutEngine(
            aig,
            k=k,
            cut_limit=engine_cut_limit,
            cache=cache,
            use_choices=self.use_choices,
            budget=budget,
        )
        # With choices a borrowed cut's leaves may live anywhere in the
        # class's merged fanin cone, so the passes iterate the choice-
        # collapsed order (leaves always precede the selecting node).
        # A *plain* run on a choice-carrying network (the never-worse
        # fallback) maps only the PO-reachable subject graph instead:
        # its selection cannot use the dangling alternative cones, so
        # neither enumerating nor iterating them buys anything.
        reachable = set(aig.tfi(aig.po_nodes())) if aig.has_choices else None
        if self.use_choices:
            self.topo = aig.choice_topological_order()
            self.all_cuts = self.engine.enumerate_all()
        elif reachable is not None:
            self.topo = [node for node in aig.topological_order() if node in reachable]
            self.all_cuts = self.engine.enumerate_nodes(self.topo)
        else:
            self.topo = aig.topological_order()
            self.all_cuts = self.engine.enumerate_all()
        self.best: dict[int, Cut] = {}
        self.arrival: dict[int, int] = {0: 0}
        for pi in aig.pis:
            self.arrival[pi] = 0
        # Estimated reference counts for area flow: how often a node is
        # used in the subject graph (never below one).  The estimate is
        # restricted to the PO-reachable subgraph: references held by
        # dangling logic -- leftover cones, and in particular a choice
        # pass's additive alternative structures -- are not subject
        # logic and must not distort the sharing estimate.  This also
        # makes the choice-aware run and its plain fallback price
        # sharing identically to a plain map of the un-augmented
        # network, which is what the never-worse guarantee rests on.
        self.est_refs = self._reachable_refs(reachable)

    def _reachable_refs(self, reachable: set[int] | None = None) -> dict[int, int]:
        """Reference estimates counted over the PO-reachable subgraph only."""
        aig = self.aig
        if reachable is None:
            reachable = set(aig.tfi(aig.po_nodes()))
        counts = dict.fromkeys(self.topo, 0)
        for node in self.topo:
            if node not in reachable:
                continue
            for fanin in aig.gate_fanin_nodes(node):
                if fanin in counts:
                    counts[fanin] += 1
        for po in aig.pos:
            driver = aig.node_of(po)
            if driver in counts:
                counts[driver] += 1
        return {node: max(1, count) for node, count in counts.items()}

    # -- shared helpers -------------------------------------------------

    def poll_budget(self, counter: int) -> None:
        """Strided cooperative deadline poll for the selection loops."""
        if self.budget is not None and counter % 256 == 0:
            self.budget.checkpoint("map")

    def candidates(self, node: int) -> list[Cut]:
        """Non-trivial cuts of ``node`` (the trivial cut maps a node onto itself)."""
        cuts = [cut for cut in self.all_cuts[node] if cut.leaves != (node,)]
        return cuts if cuts else list(self.all_cuts[node])

    def cut_arrival(self, cut: Cut) -> int:
        """Arrival time of a cut: one level above its slowest leaf."""
        return 1 + max((self.arrival.get(leaf, 0) for leaf in cut.leaves), default=0)

    def cover(self) -> list[int]:
        """AND nodes used by the current selection, in topological order."""
        required: set[int] = set()
        frontier = [self.aig.node_of(po) for po in self.aig.pos if self.aig.is_and(self.aig.node_of(po))]
        while frontier:
            node = frontier.pop()
            if node in required:
                continue
            required.add(node)
            for leaf in self.best[node].leaves:
                if self.aig.is_and(leaf) and leaf not in required:
                    frontier.append(leaf)
        return [node for node in self.topo if node in required]

    def mapping_depth(self) -> int:
        """Largest PO arrival under the current selection."""
        depth = 0
        for po in self.aig.pos:
            node = self.aig.node_of(po)
            if self.aig.is_and(node):
                depth = max(depth, self.arrival[node])
        return depth

    def required_times(self, cover: list[int], target_depth: int) -> dict[int, float]:
        """Per-node required times over the current cover.

        PO drivers are required at ``target_depth``; a covered node
        pushes ``required - 1`` onto its cut leaves.  Nodes outside the
        cover are unconstrained (infinity) -- if a later pass pulls one
        into the cover as a leaf, the leaf-feasibility check against its
        *new* arrival keeps the depth bound intact.
        """
        required: dict[int, float] = {}
        for po in self.aig.pos:
            node = self.aig.node_of(po)
            if self.aig.is_and(node):
                required[node] = min(required.get(node, _INFINITY), float(target_depth))
        for node in reversed(cover):
            node_required = required.get(node, _INFINITY)
            for leaf in self.best[node].leaves:
                if not self.aig.is_and(leaf):
                    continue
                leaf_required = node_required - 1
                if leaf_required < required.get(leaf, _INFINITY):
                    required[leaf] = leaf_required
        return required

    # -- pass 1: depth --------------------------------------------------

    def depth_pass(self) -> None:
        """Depth-optimal cut per node, ties broken by leaf count."""
        for index, node in enumerate(self.topo):
            self.poll_budget(index)
            best = min(self.candidates(node), key=lambda cut: (self.cut_arrival(cut), cut.size))
            self.best[node] = best
            self.arrival[node] = self.cut_arrival(best)

    # -- pass 2: area flow ----------------------------------------------

    def area_flow_pass(self, required: dict[int, float]) -> None:
        """Re-select cuts by area flow under the required-time constraints.

        Area flow distributes the estimated cost of a node's cone over
        its estimated references, giving a global (if approximate) view
        of sharing: ``af(n) = (1 + sum af(leaf)) / est_refs(n)``.  The
        node's previous best cut is always feasible (its leaves' required
        times were derived from it), so every node keeps a selection.
        """
        flow: dict[int, float] = {0: 0.0}
        for pi in self.aig.pis:
            flow[pi] = 0.0
        for index, node in enumerate(self.topo):
            self.poll_budget(index)
            node_required = required.get(node, _INFINITY)
            best_cut: Cut | None = None
            best_cost: tuple[float, int, int] | None = None
            for cut in self.candidates(node):
                arrival = self.cut_arrival(cut)
                if arrival > node_required:
                    continue
                cut_flow = 1.0 + sum(flow.get(leaf, 0.0) for leaf in cut.leaves)
                cost = (cut_flow, arrival, cut.size)
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_cut = cut
            if best_cut is None:  # pragma: no cover - previous best is always feasible
                best_cut = self.best[node]
            self.best[node] = best_cut
            self.arrival[node] = self.cut_arrival(best_cut)
            flow[node] = (1.0 + sum(flow.get(leaf, 0.0) for leaf in best_cut.leaves)) / self.est_refs[node]

    # -- pass 3: exact area ---------------------------------------------

    def exact_area_pass(self, required: dict[int, float]) -> None:
        """Greedy exact-area recovery with reference counting.

        The mapping is reference-counted (``refs[n]`` = number of LUT
        fanins / POs consuming ``n``).  For each covered node the
        current cut is dereferenced -- conceptually deleting its cone --
        and every feasible candidate is probed for the exact number of
        LUTs its selection would (re)introduce; the cheapest wins.
        """
        refs: dict[int, int] = {}

        # Worklist form rather than recursion: the ref/deref cascade can
        # be as deep as the mapped network (carry chains), which would
        # overflow the interpreter stack.
        def ref_cut(node: int) -> int:
            area = 0
            stack = [node]
            while stack:
                current = stack.pop()
                area += 1
                for leaf in self.best[current].leaves:
                    if not self.aig.is_and(leaf):
                        continue
                    if refs.get(leaf, 0) == 0:
                        stack.append(leaf)
                    refs[leaf] = refs.get(leaf, 0) + 1
            return area

        def deref_cut(node: int) -> int:
            area = 0
            stack = [node]
            while stack:
                current = stack.pop()
                area += 1
                for leaf in self.best[current].leaves:
                    if not self.aig.is_and(leaf):
                        continue
                    refs[leaf] -= 1
                    if refs[leaf] == 0:
                        stack.append(leaf)
            return area

        def probe(node: int, cut: Cut) -> int:
            """Exact area of selecting ``cut`` at ``node``, without commitment."""
            previous = self.best[node]
            self.best[node] = cut
            area = ref_cut(node)
            deref_cut(node)
            self.best[node] = previous
            return area

        for po in self.aig.pos:
            node = self.aig.node_of(po)
            if not self.aig.is_and(node):
                continue
            if refs.get(node, 0) == 0:
                ref_cut(node)
            refs[node] = refs.get(node, 0) + 1

        for index, node in enumerate(self.topo):
            self.poll_budget(index)
            if refs.get(node, 0) == 0:
                # Not in the cover: nothing to re-select, but the node's
                # arrival must track its leaves' (legally) re-timed
                # arrivals -- a later parent may still pull it into the
                # cover, and a stale arrival would break the depth bound.
                self.arrival[node] = self.cut_arrival(self.best[node])
                continue
            node_required = required.get(node, _INFINITY)
            deref_cut(node)
            best_cut = self.best[node]
            best_cost = (probe(node, best_cut), self.cut_arrival(best_cut), best_cut.size)
            for cut in self.candidates(node):
                if cut is best_cut:
                    continue
                arrival = self.cut_arrival(cut)
                if arrival > node_required:
                    continue
                cost = (probe(node, cut), arrival, cut.size)
                if cost < best_cost:
                    best_cost = cost
                    best_cut = cut
            self.best[node] = best_cut
            ref_cut(node)
            self.arrival[node] = self.cut_arrival(best_cut)

    # -- network construction -------------------------------------------

    def build(self) -> tuple[KLutNetwork, dict[int, int], list[int]]:
        """Materialise the selection into a k-LUT network."""
        aig = self.aig
        cover = self.cover()
        klut = KLutNetwork(name=f"{aig.name}_lut{self.k}")
        node_map: dict[int, int] = {0: klut.constant_false}
        for pi, name in zip(aig.pis, aig.pi_names):
            node_map[pi] = klut.add_pi(name)
        for node in cover:
            cut = self.best[node]
            function = cut.table
            if function is None:  # pragma: no cover - fused tables are always on
                function = aig_cone_table(aig, node, cut.leaves)
            fanins = [node_map[leaf] for leaf in cut.leaves]
            node_map[node] = klut.add_lut(fanins, function)
        for po, name in zip(aig.pos, aig.po_names):
            po_node = aig.node_of(po)
            klut.add_po(node_map[po_node], negated=aig.is_complemented(po), name=name)
        return klut, node_map, cover


@dataclass
class _Selection:
    """One complete cut selection: the best-snapshot unit of comparison."""

    luts: int
    edges: int
    depth: int
    best: dict[int, Cut]
    arrival: dict[int, int]


def _map_passes(mapper: _Mapper, area_rounds: int, relax_depth: int | None = None) -> tuple[_Selection, list[int]]:
    """Run the pass sequence on one mapper; returns the best selection.

    Area recovery is monotone in practice, but a heuristic pass is never
    allowed to ship a worse selection than an earlier one: the best
    (LUTs, edges) snapshot wins.  The second element reports the LUT
    count after each executed pass (depth, area-flow, exact-area).

    ``relax_depth`` loosens the required times to that depth when the
    depth pass lands below it: the choice-aware run only has to stay
    within the *plain* run's depth, and a choice-rich network often
    reaches a lower depth whose tight required times would starve area
    recovery of slack.
    """

    def snapshot() -> _Selection:
        cover = mapper.cover()
        edges = sum(mapper.best[node].size for node in cover)
        return _Selection(len(cover), edges, mapper.mapping_depth(), dict(mapper.best), dict(mapper.arrival))

    mapper.depth_pass()
    target_depth = mapper.mapping_depth()
    if relax_depth is not None and relax_depth > target_depth:
        target_depth = relax_depth
    best = snapshot()
    pass_luts = [best.luts]

    if area_rounds >= 1:
        required = mapper.required_times(mapper.cover(), target_depth)
        mapper.area_flow_pass(required)
        candidate = snapshot()
        pass_luts.append(candidate.luts)
        if (candidate.luts, candidate.edges) < (best.luts, best.edges):
            best = candidate
    if area_rounds >= 2:
        required = mapper.required_times(mapper.cover(), target_depth)
        mapper.exact_area_pass(required)
        candidate = snapshot()
        pass_luts.append(candidate.luts)
        if (candidate.luts, candidate.edges) < (best.luts, best.edges):
            best = candidate
    return best, pass_luts


def technology_map(
    aig: Aig,
    k: int = 6,
    cut_limit: int = 8,
    area_rounds: int = 2,
    cache: CutFunctionCache | None = None,
    use_choices: bool | None = None,
    budget: "Budget | None" = None,
) -> MappingResult:
    """Map an AIG into a k-LUT network with the multi-pass mapper.

    ``area_rounds`` controls the recovery effort: 0 stops after the
    depth pass (the behaviour of the old single-pass mapper), 1 adds the
    area-flow pass, 2 (default) adds the exact-area pass.  Area recovery
    never increases the mapped depth: every pass constrains cut
    selection by required times derived from the depth-pass mapping.
    A shared :class:`~repro.cuts.cache.CutFunctionCache` can be passed
    to reuse fused cut functions across multiple mapping runs.

    ``use_choices`` controls choice-aware mapping on a choice-carrying
    network: ``None`` (default) enables it automatically whenever the
    network records choice classes, ``False`` forces a plain run.  The
    choice-aware run selects among all recorded implementations in all
    passes and is guarded by a plain fallback run, so its result never
    has more LUTs or a larger depth than plain mapping (the emitted
    k-LUT network is always choice-free).

    ``budget`` (:class:`repro.resilience.Budget`) makes the run
    deadline-aware: cut enumeration and every selection pass poll the
    deadline cooperatively (strided) and raise
    :class:`~repro.resilience.BudgetExceeded` on expiry.  The input
    network is never mutated, so an aborted map leaves no trace.
    """
    if k < 2:
        raise ValueError("LUT size k must be at least 2")
    if area_rounds < 0:
        raise ValueError("area_rounds must be non-negative")
    shared_cache = cache if cache is not None else CutFunctionCache()
    # Snapshot the (possibly shared) cache counters so the statistics
    # report this run's lookups, not the cache's lifetime totals.
    hits_before, misses_before = shared_cache.hits, shared_cache.misses
    with_choices = aig.has_choices if use_choices is None else bool(use_choices) and aig.has_choices

    stats = MappingStats(k=k, cut_limit=cut_limit)
    stats.passes.extend(["depth", "area-flow", "exact-area"][: area_rounds + 1])
    if not with_choices:
        mapper = _Mapper(aig, k, cut_limit, shared_cache, use_choices=False, budget=budget)
        stats.cuts_enumerated = sum(len(cuts) for cuts in mapper.all_cuts.values())
        selection, pass_luts = _map_passes(mapper, area_rounds)
    else:
        stats.choice_classes = aig.num_choice_classes
        stats.choice_alternatives = aig.num_choice_alternatives
        stats.passes.insert(0, "choice")
        # The plain run first: its selection is both the never-worse
        # fallback and the depth budget of the choice-aware run (the
        # choice run's required times are relaxed to the plain depth --
        # a choice-rich depth pass often lands *below* it, and the
        # tighter required times would starve area recovery of slack).
        plain_mapper = _Mapper(aig, k, cut_limit, shared_cache, use_choices=False, budget=budget)
        plain_selection, plain_pass_luts = _map_passes(plain_mapper, area_rounds)
        mapper = _Mapper(aig, k, cut_limit, shared_cache, use_choices=True, budget=budget)
        stats.cuts_enumerated = sum(len(cuts) for cuts in mapper.all_cuts.values())
        selection, pass_luts = _map_passes(mapper, area_rounds, relax_depth=plain_selection.depth)
        # Ship the choice selection only when it regresses neither LUTs
        # nor depth; edge count breaks exact-LUT ties.
        improved = selection.luts < plain_selection.luts or (
            selection.luts == plain_selection.luts
            and (selection.depth, selection.edges) <= (plain_selection.depth, plain_selection.edges)
        )
        if selection.depth <= plain_selection.depth and selection.luts <= plain_selection.luts and improved:
            stats.used_choices = True
        else:
            mapper, selection, pass_luts = plain_mapper, plain_selection, plain_pass_luts
    stats.depth_pass_luts = pass_luts[0]
    if len(pass_luts) > 1:
        stats.area_flow_luts = pass_luts[1]
    if len(pass_luts) > 2:
        stats.exact_area_luts = pass_luts[2]

    mapper.best, mapper.arrival = selection.best, selection.arrival
    network, node_map, cover = mapper.build()
    stats.num_luts = len(cover)
    stats.depth = network.depth()
    stats.num_edges = sum(mapper.best[node].size for node in cover)
    stats.cache_hits = shared_cache.hits - hits_before
    stats.cache_misses = shared_cache.misses - misses_before
    lookups = stats.cache_hits + stats.cache_misses
    stats.cache_hit_rate = stats.cache_hits / lookups if lookups else 0.0
    return MappingResult(network, node_map, stats)


def map_aig_to_klut(aig: Aig, k: int = 6, cut_limit: int = 8) -> tuple[KLutNetwork, dict[int, int]]:
    """Map an AIG into a k-LUT network (full multi-pass flow).

    Returns the LUT network together with a map from AIG node index to
    LUT node index for every node that received a LUT (plus PIs and the
    constant node).  Primary-output complementation is preserved through
    the k-LUT network's ``negated`` PO flag.  See :func:`technology_map`
    for the statistics-carrying entry point.
    """
    result = technology_map(aig, k=k, cut_limit=cut_limit)
    return result.network, result.node_map
