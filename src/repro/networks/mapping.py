"""AIG-to-k-LUT mapping.

The paper's simulator operates on k-LUT networks while the sweeper operates
on AIGs, so a structural mapper bridges the two.  The implementation is a
classical cut-based mapper: priority cuts are enumerated for every AND
node, a best cut is selected (smallest depth, then fewest leaves), and the
network is covered starting from the primary outputs.  Every selected cut
becomes a LUT whose truth table is computed over the cut leaves.
"""

from __future__ import annotations

from typing import Sequence

from ..truthtable import TruthTable
from .aig import Aig
from .cuts import Cut, enumerate_cuts
from .klut import KLutNetwork

__all__ = ["aig_node_truth_table", "aig_literal_truth_table", "map_aig_to_klut"]


def aig_node_truth_table(aig: Aig, node: int, leaves: Sequence[int]) -> TruthTable:
    """Truth table of an AIG node as a function of the cut ``leaves``.

    ``leaves`` are node indices; leaf ``i`` becomes input ``i`` of the
    resulting table.  The cone between ``node`` and the leaves must be
    bounded by the leaves (a PI reached before a leaf raises an error).
    """
    leaf_positions = {leaf: index for index, leaf in enumerate(leaves)}
    num_vars = len(leaves)
    memo: dict[int, TruthTable] = {}

    def table_of(current: int) -> TruthTable:
        if current in memo:
            return memo[current]
        if current in leaf_positions:
            result = TruthTable.variable(leaf_positions[current], num_vars)
        elif aig.is_constant(current):
            result = TruthTable.constant(False, num_vars)
        elif aig.is_pi(current):
            raise ValueError(f"primary input {current} reached but not listed as a cut leaf")
        else:
            fanin0, fanin1 = aig.fanins(current)
            table0 = table_of(aig.node_of(fanin0))
            table1 = table_of(aig.node_of(fanin1))
            if aig.is_complemented(fanin0):
                table0 = ~table0
            if aig.is_complemented(fanin1):
                table1 = ~table1
            result = table0 & table1
        memo[current] = result
        return result

    return table_of(node)


def aig_literal_truth_table(aig: Aig, literal: int, leaves: Sequence[int]) -> TruthTable:
    """Truth table of a literal (node plus complement) over the cut ``leaves``."""
    table = aig_node_truth_table(aig, aig.node_of(literal), leaves)
    return ~table if aig.is_complemented(literal) else table


def _best_cut(cuts: list[Cut], depth: dict[int, int], node: int) -> Cut:
    """Pick the depth-optimal cut, breaking ties by leaf count.

    The trivial cut ``{node}`` is excluded unless it is the only option
    (it would map the node onto itself and make no progress).
    """
    candidates = [cut for cut in cuts if cut.leaves != (node,)]
    if not candidates:
        return cuts[0]

    def cost(cut: Cut) -> tuple[int, int]:
        cut_depth = 1 + max((depth.get(leaf, 0) for leaf in cut.leaves), default=0)
        return (cut_depth, cut.size)

    return min(candidates, key=cost)


def map_aig_to_klut(aig: Aig, k: int = 6, cut_limit: int = 8) -> tuple[KLutNetwork, dict[int, int]]:
    """Map an AIG into a k-LUT network.

    Returns the LUT network together with a map from AIG node index to LUT
    node index for every node that received a LUT (plus PIs and the
    constant node).  Primary-output complementation is preserved through
    the k-LUT network's ``negated`` PO flag.
    """
    if k < 2:
        raise ValueError("LUT size k must be at least 2")
    all_cuts = enumerate_cuts(aig, k=k, cut_limit=cut_limit)

    # Depth-oriented best-cut selection in topological order.
    best_cuts: dict[int, Cut] = {}
    depth: dict[int, int] = {0: 0}
    for pi in aig.pis:
        depth[pi] = 0
    for node in aig.topological_order():
        cut = _best_cut(all_cuts[node], depth, node)
        best_cuts[node] = cut
        depth[node] = 1 + max((depth.get(leaf, 0) for leaf in cut.leaves), default=0)

    # Cover the network from the POs.
    required: set[int] = set()
    frontier = [aig.node_of(po) for po in aig.pos if aig.is_and(aig.node_of(po))]
    while frontier:
        node = frontier.pop()
        if node in required:
            continue
        required.add(node)
        for leaf in best_cuts[node].leaves:
            if aig.is_and(leaf) and leaf not in required:
                frontier.append(leaf)

    # Build the LUT network.
    klut = KLutNetwork(name=f"{aig.name}_lut{k}")
    node_map: dict[int, int] = {0: klut.constant_false}
    for pi, name in zip(aig.pis, aig.pi_names):
        node_map[pi] = klut.add_pi(name)
    for node in aig.topological_order():
        if node not in required:
            continue
        cut = best_cuts[node]
        leaves = list(cut.leaves)
        function = aig_node_truth_table(aig, node, leaves)
        fanins = [node_map[leaf] for leaf in leaves]
        node_map[node] = klut.add_lut(fanins, function)
    for po, name in zip(aig.pos, aig.po_names):
        po_node = aig.node_of(po)
        klut.add_po(node_map[po_node], negated=aig.is_complemented(po), name=name)
    return klut, node_map
