"""k-input LUT networks.

A :class:`KLutNetwork` is a DAG whose internal nodes are lookup tables of
bounded fan-in; every LUT stores its function as a word-packed
:class:`~repro.truthtable.TruthTable`.  This is the representation the
paper's STP simulator targets: each LUT's truth table converts directly
into a 2 x 2^k structural matrix and simulation becomes a chain of
semi-tensor products.

Unlike the AIG there are no complemented edges; inversions are folded into
the LUT functions during mapping.  Primary outputs may optionally be
complemented, which keeps AIG-to-LUT conversion loss-free without
introducing single-input inverter LUTs.

The container implements the
:class:`~repro.networks.protocol.MutableNetwork` protocol with the same
incremental guarantees as the AIG (via the shared
:class:`~repro.networks.incremental.IncrementalNetworkMixin`): fanout
lists and the PO reference map are maintained per construction/mutation
event, :meth:`substitute` / :meth:`replace_fanin` cost O(fanout) and
fire the mutation-listener bus, the topological order is cached per
mutation epoch, and :meth:`fanout_count` answers in O(1).  This is what
makes mapped-network resynthesis (collapsing LUT cones and committing
replacements in place) possible; the read-only seed container had to be
rebuilt from scratch for every change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..truthtable import TruthTable
from .incremental import IncrementalNetworkMixin
from .traversal import levelize, topological_sort, transitive_fanin

__all__ = ["KLutNetwork", "LutNode"]

_KIND_CONST = "const"
_KIND_PI = "pi"
_KIND_LUT = "lut"


@dataclass
class LutNode:
    """One node of a k-LUT network."""

    kind: str
    fanins: tuple[int, ...]
    function: TruthTable | None

    def is_lut(self) -> bool:
        """True for internal LUT nodes."""
        return self.kind == _KIND_LUT


class KLutNetwork(IncrementalNetworkMixin):
    """A network of k-input lookup tables."""

    def __init__(self, name: str = "klut") -> None:
        self.name = name
        # Node 0 is the constant-false node; constant true is created on demand.
        self._nodes: list[LutNode] = [LutNode(_KIND_CONST, (), TruthTable.constant(False))]
        self._const_true: int | None = None
        self._pis: list[int] = []
        self._pi_names: list[str] = []
        self._pos: list[tuple[int, bool]] = []
        self._po_names: list[str] = []
        self._num_luts = 0
        # Fanout lists, PO reference map, topo cache and listener bus.
        self._init_incremental()
        self._register_node()  # the constant-false node

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @property
    def constant_false(self) -> int:
        """Node index of the constant-false node."""
        return 0

    def constant_node(self, value: bool) -> int:
        """Node index of a constant node, creating constant-true on demand."""
        if not value:
            return 0
        if self._const_true is None:
            self._const_true = len(self._nodes)
            self._nodes.append(LutNode(_KIND_CONST, (), TruthTable.constant(True)))
            self._register_node()
        return self._const_true

    def add_pi(self, name: str | None = None) -> int:
        """Create a primary input node; returns its node index."""
        node = len(self._nodes)
        self._nodes.append(LutNode(_KIND_PI, (), None))
        self._register_node()
        self._pis.append(node)
        self._pi_names.append(name if name is not None else f"pi{len(self._pis) - 1}")
        return node

    def add_lut(self, fanins: Sequence[int], function: TruthTable) -> int:
        """Create a LUT node computing ``function`` over ``fanins``."""
        fanin_tuple = tuple(fanins)
        if function.num_vars != len(fanin_tuple):
            raise ValueError(
                f"function has {function.num_vars} inputs but {len(fanin_tuple)} fanins were given"
            )
        for fanin in fanin_tuple:
            if not 0 <= fanin < len(self._nodes):
                raise ValueError(f"fanin {fanin} references an unknown node")
        node = len(self._nodes)
        self._nodes.append(LutNode(_KIND_LUT, fanin_tuple, function))
        self._register_node()
        for fanin in fanin_tuple:
            self._fanouts[fanin].append(node)
        self._num_luts += 1
        # Appending a freshly created LUT keeps any cached order valid:
        # its fanins already exist, hence precede it.
        self._topo_append(node)
        return node

    def add_po(self, node: int, negated: bool = False, name: str | None = None) -> int:
        """Register a primary output; returns the PO index."""
        if not 0 <= node < len(self._nodes):
            raise ValueError(f"PO references unknown node {node}")
        self._pos.append((node, bool(negated)))
        self._po_names.append(name if name is not None else f"po{len(self._pos) - 1}")
        index = len(self._pos) - 1
        self._add_po_ref(node, index)
        return index

    def set_po(self, index: int, node: int, negated: bool | None = None) -> None:
        """Redirect primary output ``index`` to a new node.

        ``negated`` keeps the existing complementation flag when omitted.
        """
        if not 0 <= node < len(self._nodes):
            raise ValueError(f"PO references unknown node {node}")
        old_node, old_negated = self._pos[index]
        self._drop_po_ref(old_node, index)
        self._pos[index] = (node, old_negated if negated is None else bool(negated))
        self._add_po_ref(node, index)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Total node count (constants, PIs and LUTs)."""
        return len(self._nodes)

    @property
    def num_pis(self) -> int:
        """Number of primary inputs."""
        return len(self._pis)

    @property
    def num_pos(self) -> int:
        """Number of primary outputs."""
        return len(self._pos)

    @property
    def num_luts(self) -> int:
        """Number of internal LUT nodes (maintained counter, O(1))."""
        return self._num_luts

    @property
    def num_gates(self) -> int:
        """Number of internal gates (protocol-generic alias of :attr:`num_luts`)."""
        return self._num_luts

    @property
    def pis(self) -> list[int]:
        """Node indices of the primary inputs."""
        return list(self._pis)

    @property
    def pi_names(self) -> list[str]:
        """Names of the primary inputs (parallel to :attr:`pis`)."""
        return list(self._pi_names)

    @property
    def pos(self) -> list[tuple[int, bool]]:
        """Primary outputs as ``(node, negated)`` pairs."""
        return list(self._pos)

    @property
    def po_names(self) -> list[str]:
        """Names of the primary outputs (parallel to :attr:`pos`)."""
        return list(self._po_names)

    def po_nodes(self) -> list[int]:
        """Node indices driving the primary outputs, in PO order."""
        return [node for node, _negated in self._pos]

    def is_constant(self, node: int) -> bool:
        """True for constant-false or constant-true nodes."""
        return self._nodes[node].kind == _KIND_CONST

    def constant_value(self, node: int) -> bool:
        """Value of a constant node."""
        entry = self._nodes[node]
        if entry.kind != _KIND_CONST:
            raise ValueError(f"node {node} is not a constant")
        assert entry.function is not None
        return entry.function.bits == 1

    def is_pi(self, node: int) -> bool:
        """True if ``node`` is a primary input."""
        return self._nodes[node].kind == _KIND_PI

    def is_lut(self, node: int) -> bool:
        """True if ``node`` is an internal LUT."""
        return self._nodes[node].kind == _KIND_LUT

    def is_gate(self, node: int) -> bool:
        """True if ``node`` is an internal gate (protocol alias of :meth:`is_lut`)."""
        return self._nodes[node].kind == _KIND_LUT

    def pi_index(self, node: int) -> int:
        """Position of a PI node in the PI list."""
        if not self.is_pi(node):
            raise ValueError(f"node {node} is not a primary input")
        return self._pis.index(node)

    def lut_fanins(self, node: int) -> tuple[int, ...]:
        """Fanin node indices of a LUT."""
        entry = self._nodes[node]
        if entry.kind != _KIND_LUT:
            raise ValueError(f"node {node} is not a LUT")
        return entry.fanins

    def lut_function(self, node: int) -> TruthTable:
        """Truth table of a LUT node."""
        entry = self._nodes[node]
        if entry.kind != _KIND_LUT or entry.function is None:
            raise ValueError(f"node {node} is not a LUT")
        return entry.function

    def set_lut_function(self, node: int, function: TruthTable) -> None:
        """Replace the function of a LUT node (arity must match the fanins)."""
        entry = self._nodes[node]
        if entry.kind != _KIND_LUT:
            raise ValueError(f"node {node} is not a LUT")
        if function.num_vars != len(entry.fanins):
            raise ValueError(
                f"function has {function.num_vars} inputs but the LUT has {len(entry.fanins)} fanins"
            )
        entry.function = function

    def fanins(self, node: int) -> tuple[int, ...]:
        """Fanins of any node (empty for PIs and constants)."""
        return self._nodes[node].fanins

    def gate_fanin_nodes(self, node: int) -> tuple[int, ...]:
        """Fanin node indices of ``node`` (protocol alias of :meth:`fanins`)."""
        return self._nodes[node].fanins

    def luts(self) -> Iterator[int]:
        """Iterate the LUT node indices in creation order."""
        return (n for n, entry in enumerate(self._nodes) if entry.kind == _KIND_LUT)

    def gates(self) -> Iterator[int]:
        """Iterate the internal gate indices (protocol alias of :meth:`luts`)."""
        return self.luts()

    def nodes(self) -> Iterator[int]:
        """Iterate all node indices."""
        return iter(range(len(self._nodes)))

    def max_fanin_size(self) -> int:
        """Largest LUT fan-in in the network (0 if there are no LUTs)."""
        sizes = [len(entry.fanins) for entry in self._nodes if entry.kind == _KIND_LUT]
        return max(sizes) if sizes else 0

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def _fanin_nodes(self, node: int) -> tuple[int, ...]:
        return self._nodes[node].fanins

    def topological_order(self, include_sources: bool = False) -> list[int]:
        """LUT node indices in topological order (optionally with sources).

        Dangling LUTs (not reachable from any PO) are included as well,
        in a fanin-consistent position, so simulators can evaluate every
        node.  The order is cached: it is recomputed at most once per
        mutation epoch (O(N)) and answered with a list copy afterwards.
        Creating LUTs extends the cache in place; :meth:`substitute` and
        :meth:`replace_fanin` preserve the cache whenever the
        replacement node precedes the replaced node in the cached order
        and invalidate it otherwise.
        """
        cache = self._topo_cache
        if cache is None:
            roots = [node for node, _negated in self._pos]
            order = topological_sort(roots, self._fanin_nodes)
            lut_order = [n for n in order if self.is_lut(n)]
            reachable = set(lut_order)
            lut_order.extend(n for n in self.luts() if n not in reachable)
            cache = lut_order
            self._topo_cache = cache
            self._topo_pos = {node: i for i, node in enumerate(cache)}
        if include_sources:
            sources = [n for n in self.nodes() if not self.is_lut(n)]
            return sources + list(cache)
        return list(cache)

    def levels(self) -> dict[int, int]:
        """Logic level of every node (sources are level 0)."""
        sources = [n for n in self.nodes() if not self.is_lut(n)]
        return levelize(self.topological_order(), self._fanin_nodes, sources)

    def depth(self) -> int:
        """Largest PO level."""
        node_levels = self.levels()
        if not self._pos:
            return 0
        return max(node_levels[node] for node, _negated in self._pos)

    def tfi(self, nodes: Iterable[int], limit: int | None = None) -> list[int]:
        """Transitive fanin cone of ``nodes`` (the nodes themselves included).

        O(cone) through the stored fanin tuples, independent of the
        network size.
        """
        return transitive_fanin(list(nodes), self._fanin_nodes, limit)

    # fanouts / fanout_count / fanout_counts / tfo / topological_position
    # are provided by IncrementalNetworkMixin, answered from the
    # maintained fanout lists and PO reference map (the seed container
    # recounted every edge of the network per query).

    # ------------------------------------------------------------------
    # Mutation (the MutableNetwork surface)
    # ------------------------------------------------------------------

    def substitute(self, old_node: int, new_node: int) -> int:
        """Replace every reference to ``old_node`` by ``new_node``.

        Fanins of the LUTs in ``fanouts(old_node)`` and the PO entries
        referencing ``old_node`` are redirected (PO complementation
        flags are preserved -- a k-LUT network has no complemented
        edges, so the replacement must compute the same phase).  Returns
        the number of references rewritten.  The replaced node becomes
        dangling and can be removed later with
        :func:`repro.networks.transforms.cleanup_dangling`.

        Complexity: O(fanout(old_node)) -- only the referencing LUTs are
        visited.
        """
        if not 0 <= new_node < len(self._nodes):
            raise ValueError(f"substitute references unknown node {new_node}")
        if new_node == old_node:
            raise ValueError("cannot substitute a node by itself")
        if not self.is_lut(old_node):
            raise ValueError(f"cannot substitute non-LUT node {old_node}")
        rewritten = 0
        fanouts = self._fanouts
        old_refs = fanouts[old_node]
        fanouts[old_node] = []
        new_refs: list[int] = []
        rewired_gates = tuple(dict.fromkeys(old_refs))
        for gate in rewired_gates:
            entry = self._nodes[gate]
            replaced = sum(1 for fanin in entry.fanins if fanin == old_node)
            entry.fanins = tuple(new_node if fanin == old_node else fanin for fanin in entry.fanins)
            new_refs.extend([gate] * replaced)
            rewritten += 1
        fanouts[new_node].extend(new_refs)
        for index in self._move_po_refs(old_node, new_node):
            _node, negated = self._pos[index]
            self._pos[index] = (new_node, negated)
            rewritten += 1
        self._note_rewire(old_node, new_node)
        if self._choice_repr:
            self._choices_on_substitute(old_node, new_node)
        if self._has_mutation_audience():
            self._notify_mutation(old_node, new_node, rewired_gates)
        return rewritten

    def replace_fanin(self, gate: int, old_node: int, new_node: int) -> bool:
        """Redirect the fanins of one LUT that reference ``old_node``.

        Returns ``True`` if at least one fanin was rewritten.  The LUT's
        function is unchanged, so the rewiring is function-preserving
        whenever ``new_node`` is equivalent to ``old_node``.
        O(fanout(old_node)) for the fanout-list update.
        """
        if not 0 <= new_node < len(self._nodes):
            raise ValueError(f"replace_fanin references unknown node {new_node}")
        if not self.is_lut(gate):
            raise ValueError(f"node {gate} is not a LUT")
        entry = self._nodes[gate]
        replaced = sum(1 for fanin in entry.fanins if fanin == old_node)
        if not replaced:
            return False
        entry.fanins = tuple(new_node if fanin == old_node else fanin for fanin in entry.fanins)
        old_fanouts = self._fanouts[old_node]
        for _ in range(replaced):
            old_fanouts.remove(gate)
        self._fanouts[new_node].extend([gate] * replaced)
        self._note_rewire(old_node, new_node)
        if self._has_mutation_audience():
            self._notify_mutation(old_node, new_node, (gate,))
        return True

    def clone(self) -> "KLutNetwork":
        """Deep copy of the network (mutation listeners are not cloned)."""
        other = KLutNetwork(self.name)
        other._nodes = [LutNode(n.kind, n.fanins, n.function) for n in self._nodes]
        other._const_true = self._const_true
        other._pis = list(self._pis)
        other._pi_names = list(self._pi_names)
        other._pos = list(self._pos)
        other._po_names = list(self._po_names)
        other._num_luts = self._num_luts
        self._copy_incremental_into(other)
        return other

    # ------------------------------------------------------------------
    # Evaluation (reference semantics)
    # ------------------------------------------------------------------

    def evaluate_nodes(self, pi_values: Sequence[bool | int]) -> dict[int, bool]:
        """Evaluate every node on one input assignment; returns a node-value map."""
        if len(pi_values) != self.num_pis:
            raise ValueError(f"expected {self.num_pis} input values, got {len(pi_values)}")
        values: dict[int, bool] = {}
        for node in self.nodes():
            if self.is_constant(node):
                values[node] = self.constant_value(node)
        for position, node in enumerate(self._pis):
            values[node] = bool(pi_values[position])
        for node in self.topological_order():
            function = self.lut_function(node)
            inputs = [values[f] for f in self.lut_fanins(node)]
            values[node] = function.evaluate(inputs)
        return values

    def evaluate(self, pi_values: Sequence[bool | int]) -> list[bool]:
        """Evaluate all POs on one input assignment."""
        values = self.evaluate_nodes(pi_values)
        return [values[node] ^ negated for node, negated in self._pos]

    def __repr__(self) -> str:
        return (
            f"KLutNetwork(name={self.name!r}, pis={self.num_pis}, pos={self.num_pos}, "
            f"luts={self.num_luts}, k={self.max_fanin_size()})"
        )
