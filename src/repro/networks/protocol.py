"""The ``LogicNetwork`` protocol: one interface for every network type.

The repository carries two network representations -- the
:class:`~repro.networks.aig.Aig` (two-input AND gates, complemented
edges) and the :class:`~repro.networks.klut.KLutNetwork` (k-input LUTs,
no edge complementation) -- and most of the machinery built on top of
them (pass pipelines, traversal, simulation windows, statistics) needs
only a small network-agnostic surface: node iteration, fanin/fanout
queries, topological order, levels and mutation events.  This module
makes that surface explicit, in the spirit of mockturtle's "network
interface" concept: engines are written against the protocol, and any
container structurally providing the methods participates.

Two protocols are defined:

* :class:`LogicNetwork` -- the **read surface**: node/gate iteration,
  PI/PO queries, fanins as *node indices* (edge attributes such as AIG
  complement bits or LUT functions stay representation-specific),
  topological order, levels, depth, fanout lists/counts, TFI/TFO cones
  and reference evaluation;
* :class:`MutableNetwork` -- the **incremental mutation surface** on
  top: ``substitute`` / ``replace_fanin`` with O(fanout) bookkeeping, a
  mutation-listener bus for incremental consumers (the cut engine, the
  sweepers), an epoch-cached topological order exposed through
  ``topological_position``, and ``clone``.

Replacement references
----------------------

``substitute(old_node, replacement)`` takes the network's natural *edge
reference* as the replacement: a **literal** (``2 * node + complement``)
on an AIG, a plain **node index** on a k-LUT network (which has no
complemented edges; inversions are absorbed into LUT functions).
Mutation listeners receive the same reference type.  Code that must
stay fully generic can restrict itself to node-level replacements
(literal with a clear complement bit on an AIG).

Both protocols are ``runtime_checkable``: ``isinstance(network,
LogicNetwork)`` verifies the method surface (not the signatures), which
the conformance test suite uses to pin both containers to the protocol.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Protocol, Sequence, runtime_checkable

__all__ = ["LogicNetwork", "MutableNetwork", "MutationListener", "ChoiceListener", "network_kind"]

#: Signature of a mutation hook: ``listener(old_node, replacement,
#: rewired_gates)`` where ``replacement`` is the network's edge-reference
#: type (an AIG literal / a k-LUT node index) and ``rewired_gates`` are
#: the gate indices whose fanins were redirected by the event.
MutationListener = Callable[[int, int, "tuple[int, ...]"], None]

#: Signature of a choice hook: ``listener(representative, members)``,
#: fired after any choice-class change with the nodes whose class
#: composition changed.  Incremental consumers (the choice-aware cut
#: engine) invalidate exactly those nodes' merged state.
ChoiceListener = Callable[[int, "tuple[int, ...]"], None]


@runtime_checkable
class LogicNetwork(Protocol):
    """Read surface shared by every logic-network container."""

    name: str

    # -- size ----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Total node count (constants, PIs and gates)."""
        ...

    @property
    def num_pis(self) -> int:
        """Number of primary inputs."""
        ...

    @property
    def num_pos(self) -> int:
        """Number of primary outputs."""
        ...

    @property
    def num_gates(self) -> int:
        """Number of internal gates (AND nodes / LUTs)."""
        ...

    # -- node classification -------------------------------------------

    @property
    def pis(self) -> list[int]:
        """Node indices of the primary inputs."""
        ...

    def nodes(self) -> Iterator[int]:
        """Iterate all node indices."""
        ...

    def gates(self) -> Iterator[int]:
        """Iterate the internal gate indices in creation order."""
        ...

    def is_pi(self, node: int) -> bool:
        """True if ``node`` is a primary input."""
        ...

    def is_constant(self, node: int) -> bool:
        """True if ``node`` is a constant node."""
        ...

    def is_gate(self, node: int) -> bool:
        """True if ``node`` is an internal gate (AND node / LUT)."""
        ...

    def pi_index(self, node: int) -> int:
        """Position of a PI node in the PI list."""
        ...

    # -- connectivity --------------------------------------------------

    def gate_fanin_nodes(self, node: int) -> Sequence[int]:
        """Fanin *node indices* of ``node`` (empty for PIs and constants)."""
        ...

    def po_nodes(self) -> list[int]:
        """Node indices driving the primary outputs, in PO order."""
        ...

    def topological_order(self) -> list[int]:
        """Gate indices in topological (fanin-before-fanout) order."""
        ...

    def levels(self) -> dict[int, int]:
        """Logic level of every node (sources are level 0)."""
        ...

    def depth(self) -> int:
        """Largest PO level."""
        ...

    def fanouts(self, node: int) -> list[int]:
        """Gate indices referencing ``node`` (one entry per referencing fanin)."""
        ...

    def fanout_count(self, node: int) -> int:
        """Number of references of ``node`` (gate fanins plus PO drivers)."""
        ...

    def fanout_counts(self) -> dict[int, int]:
        """Number of gate/PO references of every node."""
        ...

    def tfi(self, nodes: Iterable[int], limit: int | None = None) -> list[int]:
        """Transitive fanin cone of ``nodes`` (the nodes themselves included)."""
        ...

    def tfo(self, nodes: Iterable[int], limit: int | None = None) -> list[int]:
        """Transitive fanout cone of ``nodes`` (the nodes themselves included)."""
        ...

    # -- choice classes ------------------------------------------------

    @property
    def has_choices(self) -> bool:
        """True when at least one choice class is recorded."""
        ...

    def choice_repr(self, node: int) -> int:
        """Representative of ``node``'s choice class (``node`` itself if none)."""
        ...

    def choice_phase(self, node: int) -> bool:
        """Phase of ``node`` relative to its class representative."""
        ...

    def choice_members(self, node: int) -> list[int]:
        """Members of ``node``'s class, representative first (``[node]`` if none)."""
        ...

    def choices(self, node: int) -> list[tuple[int, bool]]:
        """Other members of ``node``'s class with phases relative to ``node``."""
        ...

    def choice_topological_order(self) -> list[int]:
        """Gate order consistent with the choice-collapsed graph."""
        ...

    # -- reference semantics -------------------------------------------

    def evaluate(self, pi_values: Sequence[bool | int]) -> list[bool]:
        """Evaluate all POs on one input assignment (reference semantics)."""
        ...


@runtime_checkable
class MutableNetwork(LogicNetwork, Protocol):
    """Incremental mutation surface on top of the read surface.

    Implementations maintain their bookkeeping (fanout lists, PO
    reference maps, the cached topological order) incrementally, so
    ``substitute`` costs O(fanout(old_node)), not O(network).
    """

    def substitute(self, old_node: int, replacement: int) -> int:
        """Redirect every reference to ``old_node`` to ``replacement``.

        ``replacement`` is the network's edge-reference type (see the
        module docstring).  Returns the number of references rewritten;
        the replaced node becomes dangling.
        """
        ...

    def replace_fanin(self, gate: int, old_node: int, replacement: int) -> bool:
        """Redirect the fanins of one gate that reference ``old_node``."""
        ...

    def add_mutation_listener(self, listener: MutationListener) -> None:
        """Register a hook invoked after every substitute/replace_fanin."""
        ...

    def remove_mutation_listener(self, listener: MutationListener) -> None:
        """Unregister a mutation hook (no-op if it is not registered)."""
        ...

    def add_choice(self, repr_node: int, alternative: int) -> bool:
        """Record an equivalent alternative (edge-reference type) for a gate.

        Best effort: returns ``False`` instead of recording a link that
        would break the choice-collapsed acyclicity invariant.
        """
        ...

    def remove_choice(self, node: int) -> bool:
        """Detach ``node`` from its choice class."""
        ...

    def add_choice_listener(self, listener: ChoiceListener) -> None:
        """Register a hook invoked after every choice-class change."""
        ...

    def remove_choice_listener(self, listener: ChoiceListener) -> None:
        """Unregister a choice hook (no-op if it is not registered)."""
        ...

    def topological_position(self, node: int) -> int:
        """Position of a gate in the cached topological order (-1 for sources)."""
        ...

    def clone(self) -> "MutableNetwork":
        """Deep copy of the network (mutation listeners are not cloned)."""
        ...


def network_kind(network: object) -> str:
    """Short kind tag of a network instance (``"aig"`` / ``"klut"`` / class name).

    The pass pipeline uses these tags to validate that a script's passes
    compose (an AIG pass cannot run on a mapped network); keeping the
    mapping here avoids import cycles between the containers and the
    pass layer.
    """
    from .aig import Aig
    from .klut import KLutNetwork

    if isinstance(network, Aig):
        return "aig"
    if isinstance(network, KLutNetwork):
        return "klut"
    return type(network).__name__.lower()
