"""Command-line front ends of the synthesis service.

``repro serve``
    Start the persistent server (see
    :class:`~repro.service.server.SynthesisServer`).  ``--workers N``
    selects an ``N``-process worker pool with warmed shared libraries;
    ``--workers 0`` runs jobs in server-process threads (debugging).

``repro submit``
    Submit one circuit file to a running server, stream per-pass
    progress to stdout, optionally write the result network and the
    flow-statistics JSON, and exit with the same code scheme as the
    local ``repro optimize`` (0 ok / 1 verify-fail / 2 usage-parse /
    3 pass rolled back / 4 budget-abort; 5 = internal service error).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Mapping

from ..rewriting import NAMED_SCRIPTS
from .client import ServiceError, fetch_json, submit
from .jobs import JobRequest, JobValidationError
from .server import run_server

__all__ = ["serve_main", "submit_main"]

_FORMAT_BY_EXTENSION = {
    ".aag": "aag",
    ".bench": "bench",
    ".blif": "blif",
}


def serve_main(argv: "list[str] | None" = None) -> int:
    """Entry point of ``repro serve``."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Run the persistent synthesis service (HTTP + NDJSON streaming)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=8390, help="TCP port (default: 8390; 0 = ephemeral)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=max(1, min(4, (os.cpu_count() or 2) - 1)),
        help="worker processes (0 = run jobs in server threads; default: cpu-based)",
    )
    parser.add_argument(
        "--cache-size", type=int, default=256, help="job-cache capacity (default: 256)"
    )
    arguments = parser.parse_args(argv)
    if arguments.workers < 0 or arguments.cache_size < 1:
        parser.error("--workers must be >= 0 and --cache-size >= 1")
    return run_server(
        host=arguments.host,
        port=arguments.port,
        workers=arguments.workers,
        cache_capacity=arguments.cache_size,
    )


def _print_event(event: Mapping[str, Any]) -> None:
    """One human-readable progress line per streamed event."""
    kind = event.get("event")
    if kind == "accepted":
        print(f"job {event.get('job')}: accepted (cache {event.get('cache')})")
    elif kind == "pass":
        status = event.get("status", "ok")
        line = (
            f"  {str(event.get('name', '?')):<8} "
            f"gates {event.get('gates_before', 0):>6} -> {event.get('gates_after', 0):<6} "
            f"{float(event.get('total_time') or 0.0):7.3f}s"
        )
        if status != "ok":
            line += f"  [{status}: {event.get('failure')}]"
        print(line, flush=True)


def _parse_submit_jobs(value: str) -> "int | str":
    """``--jobs`` type for ``repro submit``: an integer or ``auto``.

    ``auto`` is forwarded verbatim -- the *server* resolves it to its own
    CPU count, which is what matters when client and server differ.
    """
    if value.strip().lower() == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None


def submit_main(argv: "list[str] | None" = None) -> int:
    """Entry point of ``repro submit``."""
    parser = argparse.ArgumentParser(
        prog="repro-submit",
        description="Submit a circuit to a running `repro serve` and stream its progress",
        epilog=(
            "Scripts are the `repro optimize` pass names and named flows: "
            + ", ".join(sorted(NAMED_SCRIPTS))
        ),
    )
    parser.add_argument("input", help="input circuit (.aag, .bench or .blif)")
    parser.add_argument("--host", default="127.0.0.1", help="server address")
    parser.add_argument("--port", type=int, default=8390, help="server port")
    parser.add_argument("--script", default="resyn2", help="optimization script (default: resyn2)")
    parser.add_argument(
        "--jobs", "-j", type=_parse_submit_jobs, default=None,
        help=(
            "run the leading AIG passes partition-parallel across N workers on the "
            "server; 'auto' resolves to the server machine's CPU count"
        ),
    )
    parser.add_argument("--lut-size", "-k", type=int, default=None, help="LUT size of the map passes")
    parser.add_argument("--seed", type=int, default=1, help="random seed")
    parser.add_argument("--patterns", type=int, default=64, help="pattern count of the SAT passes")
    parser.add_argument("--conflict-limit", type=int, default=10_000, help="SAT conflict limit")
    parser.add_argument("--timeout", type=float, default=None, help="job wall-clock budget (seconds)")
    parser.add_argument("--pass-timeout", type=float, default=None, help="per-pass budget (seconds)")
    parser.add_argument(
        "--on-error", choices=["raise", "rollback"], default="rollback",
        help="failing-pass policy on the server (default: rollback)",
    )
    parser.add_argument(
        "--verify-commit", action="store_true",
        help="simulation cross-check every pass before committing it",
    )
    parser.add_argument("--no-verify", action="store_true", help="skip the final verification")
    parser.add_argument("--output", "-o", default=None, help="write the result network here")
    parser.add_argument(
        "--stats-json", default=None, help="write the flow statistics JSON to this file"
    )
    parser.add_argument("--quiet", "-q", action="store_true", help="suppress progress lines")
    arguments = parser.parse_args(argv)

    try:
        with open(arguments.input, encoding="utf-8") as handle:
            circuit = handle.read()
    except OSError as error:
        print(str(error), file=sys.stderr)
        return 2
    extension = os.path.splitext(arguments.input)[1].lower()
    try:
        request = JobRequest(
            circuit=circuit,
            format=_FORMAT_BY_EXTENSION.get(extension, "auto"),
            script=arguments.script,
            jobs=arguments.jobs if arguments.jobs is not None else 0,
            lut_size=arguments.lut_size,
            seed=arguments.seed,
            num_patterns=arguments.patterns,
            conflict_limit=arguments.conflict_limit,
            timeout=arguments.timeout,
            pass_timeout=arguments.pass_timeout,
            on_error=arguments.on_error,
            verify_commit=arguments.verify_commit,
            verify=not arguments.no_verify,
        )
        request.validate()
    except JobValidationError as error:
        print(str(error), file=sys.stderr)
        return 2

    on_event = None if arguments.quiet else _print_event
    try:
        outcome = submit(request, host=arguments.host, port=arguments.port, on_event=on_event)
    except ServiceError as error:
        print(str(error), file=sys.stderr)
        return 2

    if outcome.flow is not None:
        print(
            f"job {outcome.job_id}: {outcome.status}"
            + (" (served from cache)" if outcome.cached else "")
            + f" -- gates {outcome.flow.get('gates_before')} -> {outcome.flow.get('gates_after')},"
            + f" {float(outcome.flow.get('total_time') or 0.0):.3f}s"
        )
    else:
        print(f"job {outcome.job_id or '?'}: {outcome.status}: {outcome.message}")

    if arguments.stats_json and outcome.flow is not None:
        try:
            with open(arguments.stats_json, "w", encoding="utf-8") as handle:
                json.dump(outcome.flow, handle, indent=2)
                handle.write("\n")
            print(f"wrote {arguments.stats_json}")
        except OSError as error:
            print(str(error), file=sys.stderr)
            return 2
    if arguments.output and outcome.output is not None:
        expected = {"blif": ".blif", "aag": ".aag"}.get(outcome.output_format or "", "")
        out_extension = os.path.splitext(arguments.output)[1].lower()
        if expected and out_extension != expected:
            print(
                f"result is {outcome.output_format}; unsupported output format "
                f"{out_extension!r} (expected {expected!r})",
                file=sys.stderr,
            )
            return 2
        try:
            with open(arguments.output, "w", encoding="utf-8") as handle:
                handle.write(outcome.output)
            print(f"wrote {arguments.output}")
        except OSError as error:
            print(str(error), file=sys.stderr)
            return 2
    if not outcome.ok and outcome.message:
        print(f"{outcome.status}: {outcome.message}", file=sys.stderr)
    return outcome.exit_code


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(serve_main())
