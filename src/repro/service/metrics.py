"""Service metrics: job counters, per-pass wall-clock, budget aborts.

One :class:`ServiceMetrics` instance per server, updated from the job
lifecycle (accept / complete / cache hit) and from every completed
flow's serialized statistics.  All updates take a lock -- the asyncio
loop and the event-drain threads both touch it -- and
:meth:`as_dict` returns the JSON the ``/metrics`` endpoint serves.

The counters are chosen to make the service's externally observable
claims checkable:

* ``passes.executed`` only moves when a pass actually runs, so a
  cache-hit resubmission provably re-executes nothing;
* ``jobs.budget_aborts`` counts both whole-job budget aborts and
  rolled-back over-budget passes;
* ``passes.by_name`` carries cumulative wall-clock per pass name, the
  per-pass latency breakdown of the whole server lifetime;
* ``sat`` carries the lifetime CDCL-core counters (conflicts, restarts,
  propagations, learned-clause GC, solver-window reuse) folded from the
  ``sat_``-prefixed details of every executed pass.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Mapping

from .cache import JobCache

__all__ = ["ServiceMetrics"]


class ServiceMetrics:
    """Thread-safe counters backing the ``/metrics`` endpoint."""

    def __init__(self, cache: JobCache) -> None:
        self._cache = cache
        self._lock = threading.Lock()
        self.started_at = time.time()
        self.jobs_accepted = 0
        self.jobs_in_flight = 0
        self.jobs_cached = 0
        self.jobs_by_status: dict[str, int] = {}
        self.budget_aborts = 0
        self.passes_executed = 0
        self.passes_failed = 0
        self.passes_skipped = 0
        self._pass_runs: dict[str, int] = {}
        self._pass_wall_clock: dict[str, float] = {}
        #: Cumulative CDCL-core counters folded from every executed
        #: pass's ``sat_``-prefixed details (conflicts, restarts,
        #: propagations, learned-clause GC, solver-window reuse).
        self._sat_counters: dict[str, float] = {}
        #: Cumulative partition-parallel counters folded from every
        #: executed ``ppart`` pass's ``ppart_``-prefixed details
        #: (regions built / merged / rolled back, worker restarts).
        self._partition_counters: dict[str, float] = {}

    # ------------------------------------------------------------------

    def job_accepted(self, cached: bool) -> None:
        """Count one accepted job (``cached`` = served from the cache)."""
        with self._lock:
            self.jobs_accepted += 1
            if cached:
                self.jobs_cached += 1
            else:
                self.jobs_in_flight += 1

    def job_finished(self, status: str, flow: Mapping[str, Any] | None) -> None:
        """Fold one finished job (and its flow statistics) into the counters."""
        with self._lock:
            self.jobs_in_flight = max(0, self.jobs_in_flight - 1)
            self.jobs_by_status[status] = self.jobs_by_status.get(status, 0) + 1
            if status == "budget":
                self.budget_aborts += 1
            if flow is None:
                return
            for stats in flow.get("passes", ()):
                name = str(stats.get("name", "?"))
                pass_status = stats.get("status")
                if pass_status == "ok":
                    self.passes_executed += 1
                    self._pass_runs[name] = self._pass_runs.get(name, 0) + 1
                    self._pass_wall_clock[name] = self._pass_wall_clock.get(name, 0.0) + float(
                        stats.get("total_time") or 0.0
                    )
                    details = stats.get("details")
                    if isinstance(details, Mapping):
                        for key, value in details.items():
                            key = str(key)
                            if key.startswith("ppart_"):
                                counter = key[6:]
                                self._partition_counters[counter] = self._partition_counters.get(
                                    counter, 0.0
                                ) + float(value or 0.0)
                                continue
                            # Rates do not sum; consumers derive the
                            # lifetime rate from window_reuses / calls.
                            if not key.startswith("sat_") or key == "sat_window_reuse_rate":
                                continue
                            counter = key[4:]
                            self._sat_counters[counter] = self._sat_counters.get(
                                counter, 0.0
                            ) + float(value or 0.0)
                elif pass_status == "failed":
                    self.passes_failed += 1
                    if str(stats.get("failure") or "").startswith("budget"):
                        self.budget_aborts += 1
                elif pass_status == "skipped":
                    self.passes_skipped += 1

    # ------------------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot served by ``GET /metrics``."""
        with self._lock:
            per_pass = {
                name: {
                    "runs": self._pass_runs[name],
                    "wall_clock": self._pass_wall_clock.get(name, 0.0),
                }
                for name in sorted(self._pass_runs)
            }
            return {
                "uptime": time.time() - self.started_at,
                "jobs": {
                    "accepted": self.jobs_accepted,
                    "in_flight": self.jobs_in_flight,
                    "cached": self.jobs_cached,
                    "by_status": dict(self.jobs_by_status),
                    "budget_aborts": self.budget_aborts,
                },
                "passes": {
                    "executed": self.passes_executed,
                    "failed": self.passes_failed,
                    "skipped": self.passes_skipped,
                    "by_name": per_pass,
                },
                "sat": dict(self._sat_counters),
                "partitions": dict(self._partition_counters),
                "cache": self._cache.stats(),
            }
