"""Synchronous client for the synthesis service (stdlib ``http.client``).

:func:`submit` posts one :class:`~repro.service.jobs.JobRequest` to a
running ``repro serve`` and consumes the NDJSON event stream as it
arrives -- an optional ``on_event`` callback sees every event live (the
CLI prints per-pass progress lines from it) -- and folds the stream into
a :class:`JobOutcome`: the typed status, its CLI exit code, the settled
pass events, the flow statistics and the output network text.

:func:`fetch_json` reads the ``/healthz`` and ``/metrics`` endpoints.
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from .jobs import STATUS_EXIT_CODES, JobRequest

__all__ = ["ServiceError", "JobOutcome", "submit", "fetch_json"]


class ServiceError(RuntimeError):
    """The service could not be reached or answered with garbage."""


@dataclass
class JobOutcome:
    """Folded view of one job's event stream."""

    status: str
    message: str = ""
    job_id: str = ""
    cached: bool = False
    cache_key: str = ""
    flow: dict[str, Any] | None = None
    output: str | None = None
    output_format: str | None = None
    events: list[dict[str, Any]] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """The CLI exit code of :attr:`status` (0/1/2/3/4, 5 = internal)."""
        return STATUS_EXIT_CODES.get(self.status, STATUS_EXIT_CODES["internal"])

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def pass_events(self) -> list[dict[str, Any]]:
        """The per-pass progress events, in arrival order."""
        return [event for event in self.events if event.get("event") == "pass"]


def _fold(events: list[dict[str, Any]]) -> JobOutcome:
    """Collapse a full event stream into its outcome."""
    outcome = JobOutcome(status="internal", message="stream ended without a terminal event")
    outcome.events = events
    for event in events:
        kind = event.get("event")
        if kind == "accepted":
            outcome.job_id = str(event.get("job", ""))
            outcome.cache_key = str(event.get("key", ""))
        elif kind == "done":
            outcome.status = str(event.get("status", "ok"))
            outcome.cached = bool(event.get("cached", False))
            flow = event.get("flow")
            outcome.flow = flow if isinstance(flow, dict) else None
            outcome.output = event.get("output")
            outcome.output_format = event.get("output_format")
            outcome.message = str(event.get("message", ""))
        elif kind == "error":
            outcome.status = str(event.get("status", "internal"))
            outcome.message = str(event.get("message", ""))
            flow = event.get("flow")
            outcome.flow = flow if isinstance(flow, dict) else None
            outcome.output = event.get("output")
            outcome.output_format = event.get("output_format")
    return outcome


def submit(
    request: JobRequest,
    host: str = "127.0.0.1",
    port: int = 8390,
    timeout: float | None = 600.0,
    on_event: Callable[[Mapping[str, Any]], None] | None = None,
) -> JobOutcome:
    """Submit one job and consume its event stream (blocking).

    ``on_event`` is invoked with each event as its NDJSON line arrives;
    the folded :class:`JobOutcome` is returned once the stream closes.
    Connection-level failures raise :class:`ServiceError`; job-level
    failures come back as the outcome's typed status.
    """
    body = json.dumps(request.as_payload()).encode("utf-8")
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        try:
            connection.request(
                "POST", "/jobs", body, {"Content-Type": "application/json"}
            )
            response = connection.getresponse()
        except (ConnectionError, OSError) as error:
            raise ServiceError(f"cannot reach the service at {host}:{port}: {error}") from None
        if response.status != 200:
            # Rejected before scheduling: the body is one JSON error event.
            raw = response.read().decode("utf-8", "replace")
            try:
                event = json.loads(raw)
            except json.JSONDecodeError:
                raise ServiceError(
                    f"service answered HTTP {response.status} with a non-JSON body"
                ) from None
            if on_event is not None:
                on_event(event)
            return _fold([event])
        events: list[dict[str, Any]] = []
        while True:
            line = response.readline()
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                continue
            events.append(event)
            if on_event is not None:
                on_event(event)
        return _fold(events)
    finally:
        connection.close()


def fetch_json(
    path: str,
    host: str = "127.0.0.1",
    port: int = 8390,
    timeout: float | None = 30.0,
) -> dict[str, Any]:
    """GET a JSON endpoint (``/healthz``, ``/metrics``)."""
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            raw = response.read().decode("utf-8", "replace")
        except (ConnectionError, OSError) as error:
            raise ServiceError(f"cannot reach the service at {host}:{port}: {error}") from None
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError:
            raise ServiceError(f"{path} answered a non-JSON body") from None
        if response.status != 200:
            raise ServiceError(f"{path} answered HTTP {response.status}: {payload}")
        if not isinstance(payload, dict):
            raise ServiceError(f"{path} answered a non-object JSON body")
        return payload
    finally:
        connection.close()
