"""Job model of the synthesis service: requests, status codes, events.

A *job* is one optimization request: a circuit (AIGER ASCII, BENCH or
BLIF text), a flow script for the
:class:`~repro.rewriting.passes.PassManager`, and its knobs (LUT size,
seed, budgets, verification policy).  :class:`JobRequest` carries the
job over the wire as a flat JSON object, validates it **up front**
(script names and kind-composition via
:func:`~repro.rewriting.passes.validate_script`, before any work is
scheduled) and knows how to parse its circuit into a network.

Job outcomes use one typed status vocabulary shared with the CLI's exit
codes, so a script wrapping ``repro submit`` sees exactly the codes
``repro optimize`` would produce:

=================  ====  ==================================================
``ok``             0     flow completed, result verified (when requested)
``verify_failed``  1     result not equivalent to the input; not returned
``invalid``        2     malformed request, unknown pass, or parse error
``pass_failed``    3     >= 1 pass failed and was rolled back (or raised)
``budget``         4     the job's wall-clock budget aborted the flow
``internal``       5     unexpected service-side failure (worker crash)
=================  ====  ==================================================

Progress streams to the client as NDJSON *events* -- one JSON object per
line -- built by the ``event_*`` helpers here: an ``accepted`` event
(with the cache verdict), one ``pass`` event per settled pass (the
serialized :meth:`~repro.rewriting.passes.PassStatistics.as_dict`), and
a terminal ``done`` or ``error`` event (``done`` carries the serialized
:meth:`~repro.rewriting.passes.FlowStatistics.as_dict` plus the output
network text).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Mapping, Union

from ..io import ParseError, read_aiger, read_bench, read_blif
from ..networks.aig import Aig
from ..networks.klut import KLutNetwork
from ..rewriting.passes import parse_script, validate_script

__all__ = [
    "JobValidationError",
    "JobRequest",
    "STATUS_EXIT_CODES",
    "TERMINAL_EVENTS",
    "event_accepted",
    "event_pass",
    "event_done",
    "event_error",
]

Network = Union[Aig, KLutNetwork]

#: Typed job status -> process exit code (the CLI scheme, plus 5).
STATUS_EXIT_CODES: dict[str, int] = {
    "ok": 0,
    "verify_failed": 1,
    "invalid": 2,
    "pass_failed": 3,
    "budget": 4,
    "internal": 5,
}

#: Event names that end a job's stream.
TERMINAL_EVENTS = ("done", "error")

#: Formats accepted for the ``format`` field (``auto`` sniffs the text).
_FORMATS = ("auto", "aag", "bench", "blif")


class JobValidationError(ValueError):
    """A job request is malformed; rejected before any work is scheduled."""


@dataclass
class JobRequest:
    """One synthesis job as submitted over the wire.

    ``circuit`` is the circuit text (AIGER ASCII, BENCH or BLIF;
    ``format="auto"`` sniffs it).  The remaining fields mirror the
    ``repro optimize`` options; ``on_error`` defaults to ``rollback`` so
    one crashing pass degrades the job instead of killing it.
    """

    circuit: str
    format: str = "auto"
    script: str = "resyn2"
    lut_size: int | None = None
    seed: int = 1
    num_patterns: int = 64
    conflict_limit: int | None = 10_000
    timeout: float | None = None
    pass_timeout: float | None = None
    on_error: str = "rollback"
    verify_commit: bool = False
    verify: bool = True
    #: Partition-parallel worker count; 0 (the default) runs the script
    #: as given, N >= 1 wraps its leading AIG passes into a
    #: ``ppart(..., jobs=N)`` meta-pass before execution.  The string
    #: ``"auto"`` resolves to the machine's CPU count at validation time
    #: (the resolved count is what lands in the wrapped script, the
    #: cache key and the ``ppart_jobs`` metric).
    jobs: "int | str" = 0

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "JobRequest":
        """Build and validate a request from a decoded JSON object."""
        if not isinstance(payload, Mapping):
            raise JobValidationError("job payload must be a JSON object")
        schema: dict[str, tuple[type, ...]] = {
            "circuit": (str,),
            "format": (str,),
            "script": (str,),
            "lut_size": (int, type(None)),
            "seed": (int,),
            "num_patterns": (int,),
            "conflict_limit": (int, type(None)),
            "timeout": (int, float, type(None)),
            "pass_timeout": (int, float, type(None)),
            "on_error": (str,),
            "verify_commit": (bool,),
            "verify": (bool,),
            "jobs": (int, str),
        }
        unknown = sorted(set(payload) - set(schema))
        if unknown:
            raise JobValidationError(f"unknown job field(s): {', '.join(unknown)}")
        if "circuit" not in payload:
            raise JobValidationError("job payload is missing the 'circuit' field")
        kwargs: dict[str, Any] = {}
        for name, types in schema.items():
            if name not in payload:
                continue
            value = payload[name]
            # bool is an int subclass; reject True where an int is meant.
            if isinstance(value, bool) and bool not in types:
                raise JobValidationError(f"job field {name!r} has the wrong type")
            if not isinstance(value, types):
                raise JobValidationError(f"job field {name!r} has the wrong type")
            kwargs[name] = value
        request = cls(**kwargs)
        request.validate()
        return request

    def as_payload(self) -> dict[str, Any]:
        """The wire form of this request (a flat JSON-serializable dict)."""
        return {
            "circuit": self.circuit,
            "format": self.format,
            "script": self.script,
            "lut_size": self.lut_size,
            "seed": self.seed,
            "num_patterns": self.num_patterns,
            "conflict_limit": self.conflict_limit,
            "timeout": self.timeout,
            "pass_timeout": self.pass_timeout,
            "on_error": self.on_error,
            "verify_commit": self.verify_commit,
            "verify": self.verify,
            "jobs": self.jobs,
        }

    # ------------------------------------------------------------------

    def sniffed_format(self) -> str:
        """The concrete circuit format (resolves ``auto`` from the text)."""
        if self.format != "auto":
            return self.format
        stripped = self.circuit.lstrip()
        if stripped.startswith(("aag ", "aig ")):
            return "aag"
        if any(line.lstrip().startswith((".model", ".inputs", ".names")) for line in stripped.splitlines()[:5]):
            return "blif"
        return "bench"

    def start_kind(self) -> str:
        """Network kind the flow starts from (``blif`` inputs are mapped)."""
        return "klut" if self.sniffed_format() == "blif" else "aig"

    def validate(self) -> None:
        """Reject malformed fields and un-composable scripts up front.

        Raises :class:`JobValidationError` with a message naming the
        offending field; nothing has been scheduled when it fires.
        """
        if not self.circuit.strip():
            raise JobValidationError("'circuit' is empty")
        if self.format not in _FORMATS:
            raise JobValidationError(
                f"unknown circuit format {self.format!r} (expected one of {', '.join(_FORMATS)})"
            )
        if self.on_error not in ("raise", "rollback"):
            raise JobValidationError(f"on_error must be 'raise' or 'rollback', got {self.on_error!r}")
        if self.lut_size is not None and not 2 <= self.lut_size <= 16:
            raise JobValidationError(f"lut_size must be in [2, 16], got {self.lut_size}")
        if self.num_patterns < 1:
            raise JobValidationError("num_patterns must be >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise JobValidationError("timeout must be positive")
        if self.pass_timeout is not None and self.pass_timeout <= 0:
            raise JobValidationError("pass_timeout must be positive")
        if isinstance(self.jobs, str):
            if self.jobs != "auto":
                raise JobValidationError(
                    f"jobs must be an integer >= 0 or 'auto', got {self.jobs!r}"
                )
        elif self.jobs < 0:
            raise JobValidationError(f"jobs must be >= 0, got {self.jobs}")
        try:
            validate_script(parse_script(self.effective_script()), self.start_kind())
        except ValueError as error:
            raise JobValidationError(f"invalid script: {error}") from None

    def resolved_jobs(self) -> int:
        """The concrete worker count (``"auto"`` -> this machine's CPUs)."""
        if self.jobs == "auto":
            return os.cpu_count() or 1
        assert isinstance(self.jobs, int)
        return self.jobs

    def effective_script(self) -> str:
        """The script the flow actually runs: ``jobs``-wrapped when requested.

        With ``jobs >= 1`` (or ``"auto"``, resolved to the CPU count) the
        leading AIG passes are folded into one ``ppart(..., jobs=N)``
        meta-pass (no-op on klut-only scripts and scripts that already
        carry an explicit ``ppart``).
        """
        jobs = self.resolved_jobs()
        if jobs < 1 or self.start_kind() != "aig":
            return self.script
        from ..partition.script import wrap_script_with_jobs

        script, _wrapped = wrap_script_with_jobs(self.script, jobs)
        return script

    def canonical_script(self) -> str:
        """The script as the flat canonical pass list (cache-key form).

        Canonicalizes the *effective* script, so a ``jobs``-wrapped run
        never shares a cache entry with the sequential form of the same
        script (their results may differ structurally).
        """
        return "; ".join(parse_script(self.effective_script()))

    def parse_network(self) -> Network:
        """Parse the circuit text into its network.

        Raises :class:`~repro.io.ParseError` (or ``ValueError``) on
        malformed text -- the caller maps it to the ``invalid`` status.
        """
        fmt = self.sniffed_format()
        if fmt == "aag":
            return read_aiger(self.circuit)
        if fmt == "bench":
            return read_bench(self.circuit)
        if fmt == "blif":
            return read_blif(self.circuit)
        raise ParseError(f"unknown circuit format {fmt!r}")


# ---------------------------------------------------------------------------
# NDJSON events
# ---------------------------------------------------------------------------


def event_accepted(job_id: str, cache: str, key: str) -> dict[str, Any]:
    """First event of every stream: the job id and the cache verdict."""
    return {"event": "accepted", "job": job_id, "cache": cache, "key": key}


def event_pass(job_id: str, pass_stats: Mapping[str, Any]) -> dict[str, Any]:
    """One settled pass (``pass_stats`` = ``PassStatistics.as_dict()``)."""
    return {"event": "pass", "job": job_id, **pass_stats}


def event_done(job_id: str, result: Mapping[str, Any], cached: bool = False) -> dict[str, Any]:
    """Terminal success event carrying the worker's result payload."""
    return {"event": "done", "job": job_id, "cached": cached, **result}


def event_error(job_id: str, status: str, message: str) -> dict[str, Any]:
    """Terminal failure event with the typed status and a message."""
    return {
        "event": "error",
        "job": job_id,
        "status": status,
        "exit_code": STATUS_EXIT_CODES.get(status, STATUS_EXIT_CODES["internal"]),
        "message": message,
    }
