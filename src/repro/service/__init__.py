"""Synthesis-as-a-service: the persistent ``repro serve`` subsystem.

The caches that dominate a cold CLI invocation -- the NPN structure
library, the cut-function caches, choice libraries -- are rebuilt and
thrown away by every one-shot run.  This package keeps them warm in a
long-lived service:

* :mod:`~repro.service.server` -- the asyncio HTTP front end
  (``POST /jobs`` with NDJSON progress streaming, ``GET /healthz``,
  ``GET /metrics``), dispatching jobs to a warmed worker pool;
* :mod:`~repro.service.worker` -- per-job execution under a
  :class:`~repro.resilience.Budget` deadline with a transactional
  :class:`~repro.rewriting.passes.PassManager`, libraries warmed once
  per worker;
* :mod:`~repro.service.cache` -- the structural-hash job cache:
  resubmitting an identical (network, script, parameters) job is
  answered without re-running a single pass;
* :mod:`~repro.service.jobs` -- the wire model: requests, typed status
  codes shared with the CLI exit codes, NDJSON events;
* :mod:`~repro.service.metrics` -- job/cache/per-pass counters behind
  ``/metrics``;
* :mod:`~repro.service.client` -- the synchronous stdlib client
  (``repro submit`` and the tests use it);
* :mod:`~repro.service.cli` -- the ``repro serve`` / ``repro submit``
  entry points.
"""

from .cache import JobCache, job_cache_key
from .client import JobOutcome, ServiceError, fetch_json, submit
from .jobs import (
    STATUS_EXIT_CODES,
    JobRequest,
    JobValidationError,
)
from .metrics import ServiceMetrics
from .server import SynthesisServer, run_server
from .worker import execute_job, warm_worker

__all__ = [
    "JobCache",
    "job_cache_key",
    "JobOutcome",
    "ServiceError",
    "fetch_json",
    "submit",
    "STATUS_EXIT_CODES",
    "JobRequest",
    "JobValidationError",
    "ServiceMetrics",
    "SynthesisServer",
    "run_server",
    "execute_job",
    "warm_worker",
]
