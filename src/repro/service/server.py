"""The persistent synthesis server: ``repro serve``.

A long-lived asyncio front end (stdlib only, built directly on
:func:`asyncio.start_server`) accepting synthesis jobs over HTTP and
dispatching the CPU-bound flows to a warm worker pool:

``POST /jobs``
    Submit one job (the :class:`~repro.service.jobs.JobRequest` JSON).
    The response streams NDJSON events (``application/x-ndjson``): an
    ``accepted`` event with the job-cache verdict, one ``pass`` event
    per settled pass while the flow runs, and a terminal ``done`` /
    ``error`` event.  Malformed requests are rejected with HTTP 400 and
    a single JSON error object before any work is scheduled.

``GET /healthz``
    Liveness: uptime, pool mode and size, jobs in flight.

``GET /metrics``
    The :class:`~repro.service.metrics.ServiceMetrics` snapshot: job
    counters by status, cache hit rate, per-pass cumulative wall-clock,
    budget-abort counters.

Isolation model: each job is parsed and cache-keyed in the server
process, then executed by :func:`~repro.service.worker.execute_job` in a
pool worker under its own :class:`~repro.resilience.Budget` deadline and
a transactional :class:`~repro.rewriting.passes.PassManager` -- a
crashing, over-budget or verification-failing job returns a typed error
event while its neighbours run on.  With ``workers > 0`` the pool is a
``ProcessPoolExecutor`` whose workers warm the NPN/structure libraries
once (initializer) and share them read-only across jobs; ``workers = 0``
runs jobs in threads of the server process (tests, debugging) -- safe
because the ambient mutation observers are context-scoped and every job
builds its own engines.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import queue
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Mapping

from ..io import ParseError
from .cache import JobCache, job_cache_key
from .jobs import (
    JobRequest,
    JobValidationError,
    event_accepted,
    event_done,
    event_error,
)
from .metrics import ServiceMetrics
from .worker import execute_job, warm_worker

__all__ = ["SynthesisServer", "run_server"]

#: How long one blocking queue poll waits before re-checking the future.
_DRAIN_POLL_S = 0.05


class SynthesisServer:
    """One synthesis service instance (see the module docstring).

    ``workers > 0`` selects the process pool (that many worker
    processes); ``workers = 0`` executes jobs in server-process threads.
    ``port = 0`` binds an ephemeral port -- read the bound one back from
    :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8390,
        workers: int = 0,
        cache_capacity: int = 256,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.host = host
        self.port = port
        self.workers = workers
        self.cache = JobCache(capacity=cache_capacity)
        self.metrics = ServiceMetrics(self.cache)
        self._job_ids = itertools.count(1)
        self._server: asyncio.AbstractServer | None = None
        self._pool: Executor | None = None
        self._drain_pool: ThreadPoolExecutor | None = None
        self._manager: Any = None
        self._started_at = time.time()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Warm the pool and start accepting connections."""
        if self.workers > 0:
            import multiprocessing

            # Spawn, not fork: by the time the first job arrives this
            # process runs an event loop, pool threads and the manager --
            # forking a worker from that state inherits held locks and
            # deadlocks.  Spawned workers import the module fresh; the
            # initializer hands them the parent's published
            # exact-enumeration blob so they attach instead of
            # re-enumerating (or warm locally when publishing failed).
            from ..rewriting.shared import publish_shared_library

            context = multiprocessing.get_context("spawn")
            self._manager = context.Manager()
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=warm_worker,
                initargs=(publish_shared_library(),),
            )
        else:
            # Thread mode: jobs share this process's warmed libraries.
            warm_worker()
            self._pool = ThreadPoolExecutor(
                max_workers=4, thread_name_prefix="repro-job"
            )
        self._drain_pool = ThreadPoolExecutor(
            max_workers=16, thread_name_prefix="repro-drain"
        )
        self._server = await asyncio.start_server(self._handle_client, self.host, self.port)
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Serve until cancelled."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting connections and shut the pools down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self._drain_pool is not None:
            self._drain_pool.shutdown(wait=False, cancel_futures=True)
            self._drain_pool = None
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None

    @property
    def mode(self) -> str:
        """``"process"`` or ``"thread"`` -- how jobs execute."""
        return "process" if self.workers > 0 else "thread"

    def _new_events_queue(self) -> Any:
        """A queue the worker can reach: manager proxy or plain Queue."""
        if self._manager is not None:
            return self._manager.Queue()
        return queue.Queue()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                await self._respond_json(writer, 400, {"error": "malformed request line"})
                return
            method, path = parts[0].upper(), parts[1]
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            body = await reader.readexactly(length) if length else b""
            await self._route(writer, method, path, body)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route(
        self, writer: asyncio.StreamWriter, method: str, path: str, body: bytes
    ) -> None:
        if method == "GET" and path == "/healthz":
            await self._respond_json(writer, 200, self._health())
            return
        if method == "GET" and path == "/metrics":
            await self._respond_json(writer, 200, self.metrics.as_dict())
            return
        if method == "POST" and path == "/jobs":
            await self._handle_job(writer, body)
            return
        await self._respond_json(
            writer, 404, {"error": f"no route for {method} {path}"}
        )

    def _health(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "uptime": time.time() - self._started_at,
            "mode": self.mode,
            "workers": self.workers if self.workers > 0 else 4,
            "jobs_in_flight": self.metrics.jobs_in_flight,
            "cache_size": len(self.cache),
        }

    @staticmethod
    async def _respond_json(
        writer: asyncio.StreamWriter, status: int, payload: Mapping[str, Any]
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}.get(status, "Error")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    @staticmethod
    async def _start_stream(writer: asyncio.StreamWriter) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()

    @staticmethod
    async def _write_event(writer: asyncio.StreamWriter, event: Mapping[str, Any]) -> bool:
        """Write one NDJSON line; False once the client has gone away."""
        try:
            writer.write(json.dumps(event).encode("utf-8") + b"\n")
            await writer.drain()
            return True
        except (ConnectionResetError, BrokenPipeError):
            return False

    # ------------------------------------------------------------------
    # Job handling
    # ------------------------------------------------------------------

    async def _handle_job(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        job_id = f"job-{next(self._job_ids)}"
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            await self._respond_json(
                writer, 400, event_error(job_id, "invalid", f"malformed JSON body: {error}")
            )
            return
        # Validate up front -- script names, kind composition, field
        # types -- and parse the circuit once here, for the cache key.
        try:
            request = JobRequest.from_payload(payload)
            network = request.parse_network()
        except (JobValidationError, ParseError, ValueError) as error:
            await self._respond_json(writer, 400, event_error(job_id, "invalid", str(error)))
            return

        key = job_cache_key(network, request)
        cached = self.cache.get(key)
        if cached is not None:
            self.metrics.job_accepted(cached=True)
            await self._start_stream(writer)
            await self._write_event(writer, event_accepted(job_id, "hit", key))
            await self._write_event(writer, event_done(job_id, cached, cached=True))
            return

        self.metrics.job_accepted(cached=False)
        await self._start_stream(writer)
        await self._write_event(writer, event_accepted(job_id, "miss", key))
        result = await self._dispatch(writer, job_id, request)
        status = str(result.get("status", "internal"))
        flow = result.get("flow")
        if status == "ok":
            self.cache.put(key, result)
            await self._write_event(writer, event_done(job_id, result))
        else:
            terminal = event_error(
                job_id, status, str(result.get("message", "job failed"))
            )
            if flow is not None:
                terminal["flow"] = flow
            if "output" in result:
                terminal["output"] = result["output"]
                terminal["output_format"] = result["output_format"]
            await self._write_event(writer, terminal)
        self.metrics.job_finished(status, flow if isinstance(flow, Mapping) else None)

    async def _dispatch(
        self, writer: asyncio.StreamWriter, job_id: str, request: JobRequest
    ) -> dict[str, Any]:
        """Run one job in the pool, streaming its events as they arrive."""
        assert self._pool is not None, "call start() first"
        loop = asyncio.get_running_loop()
        events = self._new_events_queue()
        try:
            future = loop.run_in_executor(
                self._pool, execute_job, job_id, request.as_payload(), events
            )
        except RuntimeError as error:  # pool already shut down
            return {"status": "internal", "message": str(error)}
        pump = asyncio.ensure_future(self._pump_events(writer, events, future))
        try:
            result = await future
        except Exception as error:  # worker process died (BrokenProcessPool etc.)
            result = {
                "status": "internal",
                "message": f"{type(error).__name__}: {error}",
            }
        finally:
            await pump
        if not isinstance(result, dict):
            return {"status": "internal", "message": "worker returned a malformed result"}
        return result

    async def _pump_events(
        self, writer: asyncio.StreamWriter, events: Any, future: "asyncio.Future[Any]"
    ) -> None:
        """Forward worker events to the client until the job settles."""
        loop = asyncio.get_running_loop()
        client_alive = True

        def blocking_get() -> Any:
            try:
                return events.get(True, _DRAIN_POLL_S)
            except queue.Empty:
                return None

        while True:
            event = await loop.run_in_executor(self._drain_pool, blocking_get)
            if event is not None:
                if client_alive:
                    client_alive = await self._write_event(writer, event)
                continue
            if future.done():
                # Drain the stragglers without blocking, then stop.
                while True:
                    try:
                        event = events.get_nowait()
                    except queue.Empty:
                        return
                    if client_alive:
                        client_alive = await self._write_event(writer, event)


def run_server(
    host: str = "127.0.0.1",
    port: int = 8390,
    workers: int = 0,
    cache_capacity: int = 256,
) -> int:
    """Blocking entry point: serve until interrupted (returns exit code)."""

    async def _amain() -> None:
        server = SynthesisServer(
            host=host, port=port, workers=workers, cache_capacity=cache_capacity
        )
        await server.start()
        pool = f"{server.workers} process workers" if workers > 0 else "in-process thread pool"
        print(
            f"repro serve listening on http://{server.host}:{server.port} "
            f"({pool}, job cache {server.cache.capacity})",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(_amain())
    except KeyboardInterrupt:
        pass
    return 0
