"""Structural-hash job cache: identical resubmissions are free.

The cache key is *semantic*, not textual: it digests the parsed
network's canonical :func:`~repro.networks.structural_hash` together
with the canonical (expanded) pass list and every knob that can change
the result network (LUT size, seed, pattern count, conflict limit,
commit verification).  A client that renumbers nodes, reorders lines,
renames signals or spells the script ``"resyn2"`` instead of its
expansion therefore still hits; a different seed or LUT size misses.
Budget fields (``timeout`` / ``pass_timeout``) and the error policy are
deliberately **excluded**: only clean, fully-committed results are ever
stored, and those are budget-independent.

The store is a bounded LRU guarded by a lock -- the server touches it
from the asyncio thread and the metrics endpoint may race a drain
thread.  Entries are the worker's JSON-ready result payloads, so a hit
is served by echoing the stored object without touching a worker.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Mapping, Union

from ..networks.aig import Aig
from ..networks.klut import KLutNetwork
from ..networks.structural_hash import structural_digest
from .jobs import JobRequest

__all__ = ["job_cache_key", "JobCache"]

Network = Union[Aig, KLutNetwork]


def job_cache_key(network: Network, request: JobRequest) -> str:
    """Cache key of ``request`` submitted with the parsed ``network``."""
    parameters = "|".join(
        (
            request.canonical_script(),
            str(request.lut_size),
            str(request.seed),
            str(request.num_patterns),
            str(request.conflict_limit),
            str(request.verify_commit),
            str(request.verify),
        )
    )
    digest = hashlib.blake2b(structural_digest(network), digest_size=16)
    digest.update(parameters.encode("ascii"))
    return digest.hexdigest()


class JobCache:
    """Bounded, thread-safe LRU cache of completed job results.

    ``get`` counts a hit or a miss; ``put`` inserts (or refreshes) an
    entry, evicting the least recently used one beyond ``capacity``.
    Stored values are treated as immutable JSON payloads -- callers must
    not mutate what they get back.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, Mapping[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Mapping[str, Any] | None:
        """The cached result for ``key``, or ``None`` (counts hit/miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: str, result: Mapping[str, Any]) -> None:
        """Store ``result`` under ``key``, evicting the LRU tail if full."""
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, Any]:
        """JSON-ready snapshot for the ``/metrics`` endpoint."""
        with self._lock:
            size = len(self._entries)
        return {
            "size": size,
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }
