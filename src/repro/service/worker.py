"""Worker-side job execution: warmed shared libraries, one flow per job.

Workers are plain functions so they run identically in a
``ProcessPoolExecutor`` (the server's default: one OS process per
worker, true parallelism) and in a thread pool (``--workers 0``, used by
the tests and for debugging).

:func:`warm_worker` is the pool initializer: it pays the cache warm-up
that dominates a cold CLI invocation **once per worker process** -- the
exact-enumeration NPN structure library
(:func:`~repro.rewriting.library.default_library`) and the NPN canonical
tables -- so every job dispatched to that worker reuses them.  The
libraries are only ever read after warm-up (structures are memoised
per NPN class and new classes are appended, never mutated in place), so
sharing them across the jobs a worker executes sequentially -- or, in
thread mode, across concurrent jobs -- is safe.

:func:`execute_job` runs one job end to end under its own
:class:`~repro.resilience.Budget` deadline and a transactional
:class:`~repro.rewriting.passes.PassManager` (``on_error="rollback"``
by default, optional verification-gated commits), so a crashing,
over-budget or verification-failing job produces a typed result without
poisoning the worker for its neighbours.  Per-pass progress is pushed
into the ``events`` queue as it happens (a ``multiprocessing`` manager
queue from the process pool, a plain ``queue.Queue`` in thread mode);
the final result is the function's return value.
"""

from __future__ import annotations

import traceback
from typing import Any, Mapping, Protocol

from ..io import ParseError, write_aiger, write_blif
from ..networks.klut import KLutNetwork
from ..resilience import Budget, BudgetExceeded, VerificationFailed
from ..rewriting.passes import FlowStatistics, PassManager, PassStatistics
from ..truthtable import TruthTable
from .jobs import JobRequest, JobValidationError, event_pass

__all__ = ["warm_worker", "execute_job", "EventSink"]


class EventSink(Protocol):
    """Anything with a ``put`` accepting one JSON-ready event dict."""

    def put(self, item: dict[str, Any]) -> None: ...  # pragma: no cover - protocol


_WARMED = False


def warm_worker(shared: Any | None = None) -> None:
    """Build (or attach) the shared read-only libraries once per worker.

    Forces the 4-input exact structure enumeration (the expensive part
    of :func:`~repro.rewriting.library.default_library`) and, through
    NPN canonicalization of the probe tables, the transform tables --
    the caches every ``rw`` / ``rf`` / ``choice`` pass consults.
    Idempotent; safe to call from the server process too (thread mode).

    ``shared`` is an optional
    :class:`~repro.rewriting.shared.SharedLibraryDescriptor` published
    by the parent: the worker then *attaches* the parent's
    exact-enumeration blob (read-only, zero-copy) instead of
    re-enumerating, so the probes below only materialize three class
    structures.  Attach failure silently falls back to the local
    enumeration -- shared memory is a performance path, never a
    correctness dependency.
    """
    global _WARMED
    if shared is not None:
        try:
            from ..rewriting.shared import attach_shared_library

            attach_shared_library(shared)
        except Exception:
            pass
    if _WARMED:
        return
    from ..rewriting.library import default_library

    library = default_library()
    # One probe per arity triggers that arity's exact enumeration (or,
    # with an attached blob, just a shared-table lookup).
    library.structure(TruthTable(4, 0x6996))  # 4-input XOR
    library.structure(TruthTable(3, 0xE8))  # majority-3
    library.structure(TruthTable(2, 0x8))  # AND2
    _WARMED = True


def _job_status(flow: FlowStatistics) -> str:
    """Typed status of a completed (non-raising) flow run."""
    if flow.verified is False:
        return "verify_failed"
    if flow.budget_exhausted:
        return "budget"
    if flow.failed_passes:
        return "pass_failed"
    return "ok"


def _serialize_output(network: Any) -> tuple[str, str]:
    """Output text and its format for the result payload."""
    if isinstance(network, KLutNetwork):
        return write_blif(network), "blif"
    return write_aiger(network).decode("ascii"), "aag"


def execute_job(
    job_id: str, payload: Mapping[str, Any], events: "EventSink | None" = None
) -> dict[str, Any]:
    """Run one job; returns the JSON-ready result payload.

    Never raises (short of interpreter death): every failure mode comes
    back as a payload with a typed ``status`` (see
    :data:`~repro.service.jobs.STATUS_EXIT_CODES`) and a ``message``.
    ``events`` receives one ``pass`` event per settled pass while the
    flow runs.
    """
    warm_worker()
    try:
        request = JobRequest.from_payload(payload)
        network = request.parse_network()
    except (JobValidationError, ParseError) as error:
        return {"status": "invalid", "message": str(error)}
    except ValueError as error:
        return {"status": "invalid", "message": str(error)}

    try:
        manager = PassManager(
            request.effective_script(),
            seed=request.seed,
            num_patterns=request.num_patterns,
            conflict_limit=request.conflict_limit,
            lut_size=request.lut_size,
            on_error=request.on_error,
            verify_commit=request.verify_commit,
            pass_timeout=request.pass_timeout,
        )
    except ValueError as error:
        return {"status": "invalid", "message": str(error)}

    def emit(stats: PassStatistics) -> None:
        if events is not None:
            events.put(event_pass(job_id, stats.as_dict()))

    budget = Budget(wall_clock=request.timeout) if request.timeout is not None else None
    try:
        optimized, flow = manager.run(
            network, verify=request.verify, budget=budget, progress=emit
        )
    except BudgetExceeded as error:
        return {"status": "budget", "message": str(error)}
    except VerificationFailed as error:
        return {"status": "verify_failed", "message": str(error)}
    except Exception as error:  # a pass raised under on_error="raise"
        return {
            "status": "pass_failed",
            "message": f"{type(error).__name__}: {error}",
            "traceback": traceback.format_exc(limit=8),
        }

    status = _job_status(flow)
    result: dict[str, Any] = {
        "status": status,
        "flow": flow.as_dict(),
    }
    if status in ("ok", "pass_failed"):
        output, output_format = _serialize_output(optimized)
        result["output"] = output
        result["output_format"] = output_format
    if status != "ok":
        reasons = "; ".join(
            f"{stats.name}: {stats.failure}" for stats in flow.failed_passes
        )
        result["message"] = reasons or f"flow finished with status {status!r}"
    return result
