"""Bitwise (word-parallel and per-pattern) reference simulators.

These are the baselines the paper compares the STP simulator against
(Table I, "Mockturtle" columns):

* :func:`simulate_aig` -- word-parallel AIG simulation ("TA"): every node's
  signature is computed with two bitwise operations on packed words, the
  classical fast path of modern simulators;
* :func:`simulate_klut_per_pattern` -- k-LUT simulation by extracting each
  pattern bit individually and looking it up in the node's truth table
  ("TL"): the slow path the paper observes in off-the-shelf simulators,
  because bitwise AND/OR/XOR words do not directly implement an arbitrary
  k-input LUT;
* :func:`simulate_klut_minterm` -- k-LUT simulation by expanding every LUT
  into a sum of minterms over packed words; included as a second baseline
  and as a cross-check oracle.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..networks.aig import Aig
from ..networks.klut import KLutNetwork
from ..truthtable import TruthTable
from .patterns import PatternSet
from .signatures import SimulationResult

__all__ = [
    "simulate_aig",
    "simulate_aig_words",
    "simulate_aig_nodes",
    "simulate_klut_per_pattern",
    "simulate_klut_minterm",
    "aig_po_signatures",
    "klut_po_signatures",
    "node_truth_tables",
]


def simulate_aig_words(aig: Aig, patterns: PatternSet) -> list[int]:
    """Word-parallel simulation into a flat signature array.

    Returns one packed signature word per node, indexed by node number --
    the array-backed hot path behind :func:`simulate_aig` and the
    incremental simulator.  The flat list avoids per-node dictionary
    hashing in the inner loop.
    """
    if patterns.num_inputs != aig.num_pis:
        raise ValueError(f"pattern set has {patterns.num_inputs} inputs, AIG has {aig.num_pis}")
    mask = patterns.mask
    words = [0] * aig.num_nodes
    for position, pi in enumerate(aig.pis):
        words[pi] = patterns.input_word(position) & mask
    entries = aig.node_entries
    for node in aig.topological_order():
        entry = entries[node]
        fanin0 = entry.fanin0
        fanin1 = entry.fanin1
        word0 = words[fanin0 >> 1]
        if fanin0 & 1:
            word0 ^= mask
        word1 = words[fanin1 >> 1]
        if fanin1 & 1:
            word1 ^= mask
        words[node] = word0 & word1
    return words


def simulate_aig(aig: Aig, patterns: PatternSet) -> SimulationResult:
    """Word-parallel simulation of every node of an AIG."""
    words = simulate_aig_words(aig, patterns)
    result = SimulationResult(patterns.num_patterns)
    result.signatures = dict(enumerate(words))
    return result


def simulate_aig_nodes(aig: Aig, patterns: PatternSet, nodes: Iterable[int]) -> dict[int, int]:
    """Signatures of selected nodes only (simulates just their TFI cone).

    The cone is traversed with a cone-local topological sort, so the cost
    is O(|TFI(nodes)|) -- independent of the network size.  This is the
    counter-example refinement path of the sweepers, which only needs the
    nodes still sitting in equivalence classes.
    """
    targets = list(nodes)
    if patterns.num_inputs != aig.num_pis:
        raise ValueError(f"pattern set has {patterns.num_inputs} inputs, AIG has {aig.num_pis}")
    mask = patterns.mask
    signatures: dict[int, int] = {0: 0}
    entries = aig.node_entries
    pi_positions = {pi: position for position, pi in enumerate(aig.pis)}
    # Inline iterative post-order DFS over the cone: leaves (PIs and the
    # constant) are evaluated on sight, AND gates after their fanins.
    # Sources are recognised by their sentinel fanins (-1), not by index.
    visited: set[int] = {0}
    stack: list[int] = [target for target in targets if target not in visited]
    order: list[int] = []
    while stack:
        node = stack.pop()
        if node < 0:
            order.append(-node)
            continue
        if node in visited:
            continue
        visited.add(node)
        entry = entries[node]
        if entry.fanin0 >= 0:
            stack.append(-node)
            fanin0 = entry.fanin0 >> 1
            fanin1 = entry.fanin1 >> 1
            if fanin0 not in visited:
                stack.append(fanin0)
            if fanin1 not in visited:
                stack.append(fanin1)
        else:
            signatures[node] = patterns.input_word(pi_positions[node]) & mask
    for node in order:
        entry = entries[node]
        fanin0 = entry.fanin0
        fanin1 = entry.fanin1
        word0 = signatures[fanin0 >> 1]
        if fanin0 & 1:
            word0 ^= mask
        word1 = signatures[fanin1 >> 1]
        if fanin1 & 1:
            word1 ^= mask
        signatures[node] = word0 & word1
    return {node: signatures[node] for node in targets}


def aig_po_signatures(aig: Aig, result: SimulationResult) -> list[int]:
    """Signatures of the primary outputs given a full simulation result."""
    outputs = []
    for po in aig.pos:
        signature = result.signature(Aig.node_of(po))
        if Aig.is_complemented(po):
            signature ^= result.mask
        outputs.append(signature)
    return outputs


def simulate_klut_per_pattern(network: KLutNetwork, patterns: PatternSet) -> SimulationResult:
    """Per-pattern (bit-extraction) simulation of a k-LUT network.

    This mirrors the behaviour the paper attributes to conventional
    simulators on LUT networks: for every pattern, every node is visited in
    topological order, its input bits are gathered one by one and the output
    bit is read from the truth table.
    """
    if patterns.num_inputs != network.num_pis:
        raise ValueError(f"pattern set has {patterns.num_inputs} inputs, network has {network.num_pis}")
    result = SimulationResult(patterns.num_patterns)
    node_order = network.topological_order()
    fanins = {node: network.lut_fanins(node) for node in node_order}
    functions = {node: network.lut_function(node) for node in node_order}
    values: dict[int, bool] = {}
    signatures: dict[int, int] = {node: 0 for node in network.nodes()}

    for node in network.nodes():
        if network.is_constant(node) and network.constant_value(node):
            signatures[node] = patterns.mask

    for pattern_index in range(patterns.num_patterns):
        for node in network.nodes():
            if network.is_constant(node):
                values[node] = network.constant_value(node)
        for position, node in enumerate(network.pis):
            values[node] = bool((patterns.input_word(position) >> pattern_index) & 1)
        for node in node_order:
            assignment = 0
            for position, fanin in enumerate(fanins[node]):
                if values[fanin]:
                    assignment |= 1 << position
            values[node] = functions[node].value_at(assignment)
        for node, value in values.items():
            if value:
                signatures[node] |= 1 << pattern_index

    result.signatures.update(signatures)
    return result


def simulate_klut_minterm(network: KLutNetwork, patterns: PatternSet) -> SimulationResult:
    """Word-parallel k-LUT simulation by sum-of-minterm expansion.

    Every LUT output word is assembled as an OR over its satisfying
    assignments, each assignment contributing an AND of (possibly
    complemented) fanin words -- ``O(k * 2^k)`` word operations per node.
    """
    if patterns.num_inputs != network.num_pis:
        raise ValueError(f"pattern set has {patterns.num_inputs} inputs, network has {network.num_pis}")
    mask = patterns.mask
    result = SimulationResult(patterns.num_patterns)
    signatures = result.signatures
    for node in network.nodes():
        if network.is_constant(node):
            signatures[node] = mask if network.constant_value(node) else 0
    for position, node in enumerate(network.pis):
        signatures[node] = patterns.input_word(position) & mask
    for node in network.topological_order():
        function = network.lut_function(node)
        fanin_words = [signatures[f] for f in network.lut_fanins(node)]
        output = 0
        for assignment in range(function.num_bits):
            if not function.value_at(assignment):
                continue
            term = mask
            for position, word in enumerate(fanin_words):
                term &= word if (assignment >> position) & 1 else (word ^ mask)
                if not term:
                    break
            output |= term
        signatures[node] = output
    return result


def klut_po_signatures(network: KLutNetwork, result: SimulationResult) -> list[int]:
    """Signatures of the primary outputs of a k-LUT network."""
    outputs = []
    for node, negated in network.pos:
        signature = result.signature(node)
        if negated:
            signature ^= result.mask
        outputs.append(signature)
    return outputs


def node_truth_tables(aig: Aig, nodes: Sequence[int] | None = None) -> dict[int, TruthTable]:
    """Global truth tables of AIG nodes via exhaustive word-parallel simulation.

    Only practical for small input counts (the pattern set is exhaustive
    over all PIs); used as an oracle in tests and by the equivalence
    checker on small circuits.
    """
    patterns = PatternSet.exhaustive(aig.num_pis)
    result = simulate_aig(aig, patterns)
    targets = list(nodes) if nodes is not None else list(aig.nodes())
    return {node: TruthTable(aig.num_pis, result.signature(node)) for node in targets}
