"""The STP-based circuit simulator (Algorithm 1 of the paper).

Boolean values are logic vectors, every k-LUT is a 2 x 2^k structural
matrix, and simulating a node is one matrix pass: the STP of the node's
structural matrix with the (Kronecker-combined) logic vectors of its
fanins selects exactly one matrix column, which is the output logic
vector.  Two simulation modes are provided, mirroring Algorithm 1:

* ``all`` -- every node is visited in topological order and its signature
  is produced by one structural-matrix pass over all patterns at once
  (:meth:`StpSimulator.simulate_all`);
* ``specified`` -- only requested nodes are simulated: the network is first
  partitioned by the cut algorithm of Section III-B (leaf limit
  ``floor(log2(#patterns))``), the structural matrix of every cut is
  computed by STP composition, and only cut roots are evaluated
  (:meth:`StpSimulator.simulate_nodes`).

Two equivalent implementations of the structural-matrix composition are
available: the literal STP-algebra path (:func:`cut_truth_table_stp` with
``use_stp_algebra=True``) builds the canonical form with swap and
power-reducing matrices exactly as in Section II-B, and the word-level
path computes the same matrix with Kronecker-structured integer
arithmetic, which is what makes large cuts practical.  The test suite
cross-checks the two.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from ..cuts import SimulationCut, klut_cone_table, simulation_cuts
from ..networks.aig import Aig
from ..networks.klut import KLutNetwork
from ..networks.mapping import aig_node_truth_table
from ..stp.canonical import STPForm, apply_operator, constant_form, normalize, variable_form
from ..truthtable import (
    TruthTable,
    stp_form_to_truth_table,
    truth_table_to_structural_matrix,
)
from .patterns import PatternSet
from .signatures import SimulationResult

__all__ = [
    "StpSimulator",
    "simulate_klut_stp",
    "cut_truth_table_stp",
    "stp_aig_truth_table",
    "common_window_leaves",
    "stp_window_truth_tables",
    "compute_pi_supports",
    "compute_local_truth_tables",
    "expand_truth_table",
    "cut_limit_for_patterns",
]


def cut_limit_for_patterns(num_patterns: int, maximum: int = 16) -> int:
    """Leaf limit of the simulation cuts, ``floor(log2(#patterns))`` (Alg. 1 line 5).

    The paper additionally restricts exhaustive windows to fewer than 16
    leaves; ``maximum`` enforces that cap.
    """
    if num_patterns < 2:
        return 1
    return max(1, min(maximum, int(math.floor(math.log2(num_patterns)))))


# ---------------------------------------------------------------------------
# Packed-word <-> bit-array helpers
# ---------------------------------------------------------------------------


def _word_to_bits(word: int, num_patterns: int) -> np.ndarray:
    """Unpack a signature integer into a uint8 array of length ``num_patterns``."""
    if num_patterns == 0:
        return np.zeros(0, dtype=np.uint8)
    num_bytes = (num_patterns + 7) // 8
    raw = word.to_bytes(num_bytes, "little")
    bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8), bitorder="little")
    return bits[:num_patterns]


def _bits_to_word(bits: np.ndarray) -> int:
    """Pack a uint8/bool array back into a signature integer."""
    if bits.size == 0:
        return 0
    packed = np.packbits(bits.astype(np.uint8), bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")


# ---------------------------------------------------------------------------
# Structural-matrix composition over a cut
# ---------------------------------------------------------------------------


def cut_truth_table_stp(
    network: KLutNetwork,
    cut: SimulationCut,
    use_stp_algebra: bool = False,
) -> TruthTable:
    """Function of a cut root over its leaves, computed through STP composition.

    With ``use_stp_algebra`` the canonical form is assembled with the
    literal matrix algebra of Section II-B (swap matrix, power-reducing
    matrix); this is exponential in the leaf count and intended for small
    cuts and cross-checking.  The default path computes the identical
    structural matrix with Kronecker-structured word arithmetic.
    """
    leaves = list(cut.leaves)
    if use_stp_algebra:
        return _cut_truth_table_algebraic(network, cut)
    # The shared cone walker drives the traversal; only the word-level
    # minterm composition (the structural-matrix product) is local.
    return klut_cone_table(network, cut.root, leaves, compose=_compose_minterms)


def _compose_minterms(function: TruthTable, fanins: Sequence[TruthTable], num_vars: int) -> TruthTable:
    """Word-level composition: OR over satisfying LUT assignments of fanin ANDs."""
    full = (1 << (1 << num_vars)) - 1
    bits = 0
    for assignment in range(function.num_bits):
        if not function.value_at(assignment):
            continue
        term = full
        for position, fanin in enumerate(fanins):
            term &= fanin.bits if (assignment >> position) & 1 else (~fanin.bits & full)
            if not term:
                break
        bits |= term
    return TruthTable(num_vars, bits)


def _cut_truth_table_algebraic(network: KLutNetwork, cut: SimulationCut) -> TruthTable:
    """Literal STP-algebra computation of a cut function (small cuts only)."""
    leaves = list(cut.leaves)
    if len(leaves) > 12:
        raise ValueError(f"algebraic STP composition limited to 12 leaves, cut has {len(leaves)}")
    leaf_names = {leaf: f"v{index}" for index, leaf in enumerate(leaves)}
    memo: dict[int, STPForm] = {}

    def form_of(node: int) -> STPForm:
        if node in memo:
            return memo[node]
        if node in leaf_names:
            result = variable_form(leaf_names[node])
        elif network.is_constant(node):
            result = constant_form(network.constant_value(node))
        elif network.is_pi(node):
            raise ValueError(f"primary input {node} reached but not listed as a cut leaf")
        else:
            matrix = truth_table_to_structural_matrix(network.lut_function(node))
            # The structural matrix of a truth table expects the *last* fanin
            # as the first STP factor (column 0 is the all-True assignment
            # with assignments read most-significant-first).
            operands = [form_of(f) for f in reversed(network.lut_fanins(node))]
            result = apply_operator(matrix, operands)
        memo[node] = result
        return result

    raw = form_of(cut.root)
    # Normalising over the natural leaf order makes form variable ``v_i``
    # correspond to truth-table input ``i`` after conversion.
    order = [f"v{index}" for index in range(len(leaves))]
    canonical = normalize(raw, order)
    return stp_form_to_truth_table(canonical)


# ---------------------------------------------------------------------------
# The simulator
# ---------------------------------------------------------------------------


class StpSimulator:
    """STP-based simulator of a k-LUT network (Algorithm 1)."""

    def __init__(self, network: KLutNetwork) -> None:
        self.network = network
        # One structural matrix per LUT, precomputed once: this is the
        # "logic matrices as primitives of the logic network" part of the
        # paper -- the simulator never looks at gate operators again.
        self._matrices: dict[int, np.ndarray] = {
            node: truth_table_to_structural_matrix(network.lut_function(node))
            for node in network.luts()
        }

    # -- mode 'a': all nodes --------------------------------------------

    def simulate_all(self, patterns: PatternSet) -> SimulationResult:
        """Simulate every node; one structural-matrix pass per node."""
        network = self.network
        if patterns.num_inputs != network.num_pis:
            raise ValueError(f"pattern set has {patterns.num_inputs} inputs, network has {network.num_pis}")
        num_patterns = patterns.num_patterns
        values: dict[int, np.ndarray] = {}
        for node in network.nodes():
            if network.is_constant(node):
                fill = 1 if network.constant_value(node) else 0
                values[node] = np.full(num_patterns, fill, dtype=np.uint8)
        for position, node in enumerate(network.pis):
            values[node] = _word_to_bits(patterns.input_word(position), num_patterns)
        for node in network.topological_order():
            values[node] = self._node_pass(node, values)
        result = SimulationResult(num_patterns)
        for node, bits in values.items():
            result.signatures[node] = _bits_to_word(bits)
        return result

    def _node_pass(self, node: int, values: Mapping[int, np.ndarray]) -> np.ndarray:
        """One structural-matrix pass: select the matrix column of each pattern.

        The STP of the structural matrix with the fanin logic vectors is a
        one-hot column selection; column index ``sum_i (1 - b_i) << i``
        (fanin ``i`` contributing bit ``i``) reproduces it for all patterns
        at once.
        """
        matrix = self._matrices[node]
        fanins = self.network.lut_fanins(node)
        num_patterns = next(iter(values.values())).shape[0] if values else 0
        columns = np.zeros(num_patterns, dtype=np.int64)
        for position, fanin in enumerate(fanins):
            columns += (1 - values[fanin].astype(np.int64)) << position
        return matrix[0, columns].astype(np.uint8)

    # -- mode 's': specified nodes ----------------------------------------

    def simulate_nodes(
        self,
        patterns: PatternSet,
        targets: Sequence[int],
        limit: int | None = None,
    ) -> SimulationResult:
        """Simulate only ``targets`` using the cut algorithm (Algorithm 1, mode s).

        ``limit`` defaults to ``floor(log2(#patterns))`` as in the paper;
        the returned result contains signatures for the cut roots (which
        include every target), the PIs and the constants.
        """
        network = self.network
        if patterns.num_inputs != network.num_pis:
            raise ValueError(f"pattern set has {patterns.num_inputs} inputs, network has {network.num_pis}")
        if limit is None:
            limit = cut_limit_for_patterns(patterns.num_patterns)
        num_patterns = patterns.num_patterns

        cuts = simulation_cuts(network, list(targets), limit)
        values: dict[int, np.ndarray] = {}
        for node in network.nodes():
            if network.is_constant(node):
                fill = 1 if network.constant_value(node) else 0
                values[node] = np.full(num_patterns, fill, dtype=np.uint8)
        for position, node in enumerate(network.pis):
            values[node] = _word_to_bits(patterns.input_word(position), num_patterns)

        for cut in cuts:
            table = cut_truth_table_stp(network, cut)
            matrix = truth_table_to_structural_matrix(table)
            columns = np.zeros(num_patterns, dtype=np.int64)
            for position, leaf in enumerate(cut.leaves):
                columns += (1 - values[leaf].astype(np.int64)) << position
            values[cut.root] = matrix[0, columns].astype(np.uint8)

        result = SimulationResult(num_patterns)
        for node, bits in values.items():
            result.signatures[node] = _bits_to_word(bits)
        return result

    # -- exhaustive local signatures (Section III-C) -----------------------

    def exhaustive_truth_tables(
        self,
        targets: Sequence[int],
        max_support: int = 16,
    ) -> dict[int, TruthTable | None]:
        """Truth table of every target over its own PI support.

        This is the exhaustive-pattern simulation of Section III-C: the
        scale of the exhaustive pattern set is ``2^|support|``, usually far
        smaller than the global pattern count.  Targets whose support
        exceeds ``max_support`` map to ``None``.
        """
        network = self.network
        results: dict[int, TruthTable | None] = {}
        for target in targets:
            cone = network.tfi([target])
            support = [node for node in cone if network.is_pi(node)]
            if len(support) > max_support:
                results[target] = None
                continue
            cut = SimulationCut(target, tuple(support), tuple(n for n in cone if network.is_lut(n) and n != target))
            if network.is_pi(target):
                results[target] = TruthTable.variable(0, 1)
            elif network.is_constant(target):
                results[target] = TruthTable.constant(network.constant_value(target))
            else:
                results[target] = cut_truth_table_stp(network, cut)
        return results


def simulate_klut_stp(
    network: KLutNetwork,
    patterns: PatternSet,
    targets: Sequence[int] | None = None,
    limit: int | None = None,
) -> SimulationResult:
    """Algorithm 1 as a single function: mode a (no targets) or mode s."""
    simulator = StpSimulator(network)
    if targets is None:
        return simulator.simulate_all(patterns)
    return simulator.simulate_nodes(patterns, targets, limit)


# ---------------------------------------------------------------------------
# Exhaustive window simulation on AIGs (used by the STP sweeper)
# ---------------------------------------------------------------------------


def stp_aig_truth_table(aig: Aig, literal: int, leaves: Sequence[int]) -> TruthTable:
    """Function of an AIG literal over ``leaves``, via structural-matrix composition.

    Every AND gate contributes its 2x4 structural matrix and every
    complemented edge an ``M_not``; the word-level composition in
    :func:`repro.networks.mapping.aig_node_truth_table` computes the same
    structural matrix and is used as the engine.
    """
    table = aig_node_truth_table(aig, Aig.node_of(literal), leaves, allow_unused_leaves=True)
    return ~table if Aig.is_complemented(literal) else table


def compute_pi_supports(aig: Aig, max_size: int | None = None) -> dict[int, tuple[int, ...] | None]:
    """Structural PI support of every node, in one bottom-up pass.

    With ``max_size`` the support of a node is stored as ``None`` as soon
    as it exceeds the bound, which keeps the pass cheap on wide circuits;
    such nodes are simply not eligible for exhaustive window simulation.
    """
    supports: dict[int, frozenset[int] | None] = {0: frozenset()}
    for pi in aig.pis:
        supports[pi] = frozenset([pi])
    for node in aig.topological_order():
        fanin0, fanin1 = aig.fanin_nodes(node)
        left = supports.get(fanin0)
        right = supports.get(fanin1)
        if left is None or right is None:
            supports[node] = None
            continue
        union = left | right
        supports[node] = None if (max_size is not None and len(union) > max_size) else union
    return {
        node: (tuple(sorted(value)) if value is not None else None)
        for node, value in supports.items()
    }


def common_window_leaves(
    aig: Aig,
    targets: Sequence[int],
    max_leaves: int = 16,
    supports: Mapping[int, tuple[int, ...] | None] | None = None,
) -> list[int] | None:
    """The combined primary-input support of a group of AIG nodes.

    Exhaustive window simulation can only *disprove* an equivalence soundly
    when the window leaves are free inputs: over an internal cut, two
    equivalent nodes may still have different local functions on the
    unreachable leaf combinations (satisfiability don't-cares).  The window
    is therefore the union of the targets' PI supports; ``None`` is
    returned when it exceeds ``max_leaves`` (the paper's "fewer than 16
    leaf nodes" restriction).  A precomputed ``supports`` map (see
    :func:`compute_pi_supports`) avoids repeated cone traversals.
    """
    leaves: list[int] = []
    for target in targets:
        target_support: Sequence[int] | None
        if supports is not None:
            target_support = supports.get(target)
            if target_support is None:
                return None
        else:
            target_support = [node for node in aig.tfi([target]) if aig.is_pi(node)]
        for node in target_support:
            if node not in leaves:
                leaves.append(node)
                if len(leaves) > max_leaves:
                    return None
    return leaves


def _truth_table_bits_array(table: TruthTable) -> np.ndarray:
    """Truth-table output bits as a uint8 numpy array (assignment 0 first)."""
    raw = table.bits.to_bytes((table.num_bits + 7) // 8, "little")
    return np.unpackbits(np.frombuffer(raw, dtype=np.uint8), bitorder="little")[: table.num_bits]


def expand_truth_table(table: TruthTable, own_leaves: Sequence[int], window: Sequence[int]) -> TruthTable:
    """Re-express a function over a larger window of leaves.

    ``own_leaves`` are the leaves (e.g. PI node indices) of ``table``'s
    inputs in order; ``window`` is a superset.  Added leaves become
    don't-cares.  The expansion is a vectorised gather, so comparing two
    node functions over the union of their supports costs microseconds
    instead of a cone traversal.
    """
    window_list = list(window)
    positions = {leaf: index for index, leaf in enumerate(window_list)}
    missing = [leaf for leaf in own_leaves if leaf not in positions]
    if missing:
        raise ValueError(f"window is missing leaves {missing}")
    if len(window_list) == len(own_leaves) and list(own_leaves) == window_list:
        return table
    assignments = np.arange(1 << len(window_list), dtype=np.int64)
    source_index = np.zeros_like(assignments)
    for own_position, leaf in enumerate(own_leaves):
        source_index |= ((assignments >> positions[leaf]) & 1) << own_position
    bits = _truth_table_bits_array(table)[source_index]
    packed = np.packbits(bits.astype(np.uint8), bitorder="little")
    return TruthTable(len(window_list), int.from_bytes(packed.tobytes(), "little"))


def compute_local_truth_tables(
    aig: Aig,
    max_support: int = 16,
    supports: Mapping[int, tuple[int, ...] | None] | None = None,
) -> dict[int, TruthTable | None]:
    """Function of every node over its own PI support, in one bottom-up pass.

    Nodes whose support exceeds ``max_support`` map to ``None``.  This is
    the precomputation behind the sweeper's exhaustive window refinement:
    any two nodes whose supports jointly fit in ``max_support`` leaves can
    afterwards be compared exhaustively with two cheap expansions, no cone
    traversal and no SAT call.
    """
    if supports is None:
        supports = compute_pi_supports(aig, max_support)
    tables: dict[int, TruthTable | None] = {0: TruthTable.constant(False)}
    for pi in aig.pis:
        tables[pi] = TruthTable.variable(0, 1)
    for node in aig.topological_order():
        support = supports.get(node)
        if support is None or len(support) > max_support:
            tables[node] = None
            continue
        fanin0, fanin1 = aig.fanins(node)
        node0, node1 = Aig.node_of(fanin0), Aig.node_of(fanin1)
        table0, table1 = tables.get(node0), tables.get(node1)
        if table0 is None or table1 is None:
            tables[node] = None
            continue
        support0 = supports.get(node0) if not aig.is_constant(node0) else ()
        support1 = supports.get(node1) if not aig.is_constant(node1) else ()
        expanded0 = expand_truth_table(table0, support0 or (), support)
        expanded1 = expand_truth_table(table1, support1 or (), support)
        if Aig.is_complemented(fanin0):
            expanded0 = ~expanded0
        if Aig.is_complemented(fanin1):
            expanded1 = ~expanded1
        tables[node] = expanded0 & expanded1
    return tables


def stp_window_truth_tables(
    aig: Aig,
    targets: Sequence[int],
    max_leaves: int = 16,
    supports: Mapping[int, tuple[int, ...] | None] | None = None,
) -> dict[int, TruthTable] | None:
    """Exhaustive window signatures of a group of AIG nodes.

    Computes one shared window (at most ``max_leaves`` leaves) covering all
    targets and returns each target's truth table over that window -- the
    exhaustive local simulation the STP sweeper uses to disprove candidate
    equivalences without calling SAT.  Returns ``None`` when no such window
    exists (or when a stale ``supports`` cache no longer covers a target's
    cone after the network was rewritten).
    """
    leaves = common_window_leaves(aig, targets, max_leaves, supports)
    if leaves is None:
        return None
    tables: dict[int, TruthTable] = {}
    for target in targets:
        if target in leaves:
            tables[target] = TruthTable.variable(leaves.index(target), len(leaves))
        else:
            try:
                tables[target] = aig_node_truth_table(aig, target, leaves, allow_unused_leaves=True)
            except ValueError:
                # A substitution enlarged the structural support beyond the
                # cached window; treat the pair as not coverable.
                return None
    return tables
