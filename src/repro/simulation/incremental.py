"""Incremental simulation.

Mockturtle-style simulators avoid recomputing whole signatures when new
patterns (typically SAT counter-examples) arrive: only the newly appended
block of values is computed, and only nodes whose support changed need a
visit.  The :class:`IncrementalAigSimulator` mirrors this behaviour for
AIGs and is the counter-example simulation engine of the baseline FRAIG
sweeper.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..networks.aig import Aig
from .patterns import PatternSet
from .signatures import SimulationResult
from .bitwise import simulate_aig

__all__ = ["IncrementalAigSimulator"]


class IncrementalAigSimulator:
    """Keeps AIG signatures up to date as patterns are appended.

    The full pattern set is simulated once up front; afterwards
    :meth:`add_pattern` appends a single pattern (e.g. a SAT
    counter-example) and updates every node signature by computing only the
    new bit, and :meth:`add_patterns` appends a block of patterns and
    recomputes only that block.
    """

    def __init__(self, aig: Aig, patterns: PatternSet | None = None) -> None:
        self.aig = aig
        self.patterns = patterns.copy() if patterns is not None else PatternSet(aig.num_pis)
        if self.patterns.num_inputs != aig.num_pis:
            raise ValueError("pattern set input count does not match the AIG")
        self.result = simulate_aig(aig, self.patterns)

    @property
    def num_patterns(self) -> int:
        """Number of patterns simulated so far."""
        return self.patterns.num_patterns

    def signature(self, node: int) -> int:
        """Current signature of ``node``."""
        return self.result.signature(node)

    def add_pattern(self, values: Sequence[int | bool]) -> None:
        """Append one pattern and update all signatures with its single bit."""
        if len(values) != self.aig.num_pis:
            raise ValueError(f"expected {self.aig.num_pis} values, got {len(values)}")
        position = self.patterns.num_patterns
        self.patterns.add_pattern(values)
        self.result.num_patterns = self.patterns.num_patterns

        bit_values: dict[int, bool] = {0: False}
        for index, pi in enumerate(self.aig.pis):
            bit_values[pi] = bool(values[index])
        for node in self.aig.topological_order():
            fanin0, fanin1 = self.aig.fanins(node)
            value0 = bit_values[Aig.node_of(fanin0)] ^ Aig.is_complemented(fanin0)
            value1 = bit_values[Aig.node_of(fanin1)] ^ Aig.is_complemented(fanin1)
            bit_values[node] = value0 and value1
        for node, value in bit_values.items():
            if value:
                self.result.signatures[node] |= 1 << position

    def add_patterns(self, block: PatternSet) -> None:
        """Append a block of patterns; only the new block of bits is computed."""
        if block.num_inputs != self.aig.num_pis:
            raise ValueError("pattern block input count does not match the AIG")
        shift = self.patterns.num_patterns
        self.patterns.extend(block)
        block_result = simulate_aig(self.aig, block)
        self.result.num_patterns = self.patterns.num_patterns
        for node, signature in block_result.signatures.items():
            self.result.signatures[node] = self.result.signatures.get(node, 0) | (signature << shift)

    def resimulate(self) -> SimulationResult:
        """Recompute every signature from scratch (used after network edits)."""
        self.result = simulate_aig(self.aig, self.patterns)
        return self.result

    def signatures_of(self, nodes: Iterable[int]) -> dict[int, int]:
        """Current signatures of selected nodes."""
        return {node: self.result.signature(node) for node in nodes}
