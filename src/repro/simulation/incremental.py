"""Incremental simulation.

Mockturtle-style simulators avoid recomputing whole signatures when new
patterns (typically SAT counter-examples) arrive: only the newly appended
block of values is computed, and only nodes whose support changed need a
visit.  The :class:`IncrementalAigSimulator` mirrors this behaviour for
AIGs and is the counter-example simulation engine of both sweepers.

Incremental-engine design
-------------------------

Signatures live in a flat list indexed by node (no per-node dictionary
hashing), and appended patterns are *buffered*: :meth:`add_pattern`
records the pattern in O(num_pis) and the buffered block is flushed
word-parallel -- one bitwise network pass for the whole block -- only
when a signature is actually read.  The previous implementation walked
the entire network once per counter-example, bit by bit, which made the
sweep's refinement loop O(counter-examples x N); sweepers now refine
classes from a cone-local simulation
(:func:`repro.simulation.bitwise.simulate_aig_nodes`) and the buffered
full-network update amortises to one word-parallel pass per block.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..networks.aig import Aig
from .patterns import PatternSet
from .signatures import SimulationResult
from .bitwise import simulate_aig_words

__all__ = ["IncrementalAigSimulator"]


class IncrementalAigSimulator:
    """Keeps AIG signatures up to date as patterns are appended.

    The full pattern set is simulated once up front; afterwards
    :meth:`add_pattern` appends a single pattern (e.g. a SAT
    counter-example) into a buffer, and the buffered block is simulated
    word-parallel on the first signature read.  :meth:`add_patterns`
    appends a block of patterns and computes only that block.
    """

    def __init__(self, aig: Aig, patterns: PatternSet | None = None) -> None:
        self.aig = aig
        self.patterns = patterns.copy() if patterns is not None else PatternSet(aig.num_pis)
        if self.patterns.num_inputs != aig.num_pis:
            raise ValueError("pattern set input count does not match the AIG")
        self._words: list[int] = simulate_aig_words(aig, self.patterns)
        self._pending: list[tuple[int, ...]] = []
        self._result_cache: SimulationResult | None = None

    @property
    def num_patterns(self) -> int:
        """Number of patterns simulated so far (buffered patterns included)."""
        return self.patterns.num_patterns + len(self._pending)

    @property
    def result(self) -> SimulationResult:
        """Current signatures as a :class:`SimulationResult` (flushes the buffer)."""
        self._flush()
        if self._result_cache is None:
            result = SimulationResult(self.patterns.num_patterns)
            result.signatures = dict(enumerate(self._words))
            self._result_cache = result
        return self._result_cache

    def signature(self, node: int) -> int:
        """Current signature of ``node``."""
        self._flush()
        return self._words[node]

    def add_pattern(self, values: Sequence[int | bool]) -> None:
        """Append one pattern; simulation is deferred to the next read."""
        if len(values) != self.aig.num_pis:
            raise ValueError(f"expected {self.aig.num_pis} values, got {len(values)}")
        self._pending.append(tuple(int(bool(v)) for v in values))

    def add_patterns(self, block: PatternSet) -> None:
        """Append a block of patterns; only the new block of bits is computed."""
        if block.num_inputs != self.aig.num_pis:
            raise ValueError("pattern block input count does not match the AIG")
        self._flush()
        self._absorb_block(block)

    def resimulate(self) -> SimulationResult:
        """Recompute every signature from scratch (used after network edits)."""
        if self._pending:
            self.patterns.extend(PatternSet.from_patterns(self._pending))
            self._pending = []
        self._words = simulate_aig_words(self.aig, self.patterns)
        self._result_cache = None
        return self.result

    def signatures_of(self, nodes: Iterable[int]) -> dict[int, int]:
        """Current signatures of selected nodes."""
        self._flush()
        words = self._words
        return {node: words[node] for node in nodes}

    # ------------------------------------------------------------------

    def _flush(self) -> None:
        """Simulate all buffered patterns with one word-parallel block pass."""
        if not self._pending:
            return
        block = PatternSet.from_patterns(self._pending)
        self._pending = []
        self._absorb_block(block)

    def _absorb_block(self, block: PatternSet) -> None:
        shift = self.patterns.num_patterns
        self.patterns.extend(block)
        block_words = simulate_aig_words(self.aig, block)
        words = self._words
        if len(block_words) > len(words):
            words.extend([0] * (len(block_words) - len(words)))
        for node, word in enumerate(block_words):
            if word:
                words[node] |= word << shift
        self._result_cache = None
