"""Simulation patterns.

A *simulation pattern* assigns one Boolean value to every primary input of
a network (Section II-A of the paper).  A :class:`PatternSet` stores many
patterns bit-packed: one arbitrary-precision integer per input, bit ``j``
being the input's value under pattern ``j``.  This is the word-parallel
layout used by bitwise simulators; the STP simulator consumes the same
object and converts columns to logic vectors on the fly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Sequence

__all__ = ["PatternSet"]


@dataclass
class PatternSet:
    """A set of simulation patterns over ``num_inputs`` primary inputs.

    Attributes
    ----------
    num_inputs:
        Number of primary inputs.
    num_patterns:
        Number of patterns currently stored.
    words:
        One integer per input; bit ``j`` of ``words[i]`` is the value of
        input ``i`` in pattern ``j``.
    """

    num_inputs: int
    num_patterns: int = 0
    words: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_inputs < 0:
            raise ValueError("num_inputs must be non-negative")
        if not self.words:
            self.words = [0] * self.num_inputs
        if len(self.words) != self.num_inputs:
            raise ValueError(f"expected {self.num_inputs} words, got {len(self.words)}")
        mask = self.mask
        self.words = [w & mask for w in self.words]

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def random(cls, num_inputs: int, num_patterns: int, seed: int = 1) -> "PatternSet":
        """Uniformly random patterns from a seeded generator (reproducible)."""
        rng = random.Random(seed)
        words = [rng.getrandbits(num_patterns) if num_patterns else 0 for _ in range(num_inputs)]
        return cls(num_inputs, num_patterns, words)

    @classmethod
    def exhaustive(cls, num_inputs: int) -> "PatternSet":
        """All ``2**num_inputs`` assignments (the exhaustive pattern set).

        Pattern ``j`` assigns input ``i`` the ``i``-th bit of ``j``, so the
        resulting signatures are truth tables in the standard convention.
        """
        if num_inputs > 20:
            raise ValueError(f"exhaustive simulation of {num_inputs} inputs is impractical (> 2^20 patterns)")
        num_patterns = 1 << num_inputs
        words = []
        for index in range(num_inputs):
            word = 0
            for pattern in range(num_patterns):
                if (pattern >> index) & 1:
                    word |= 1 << pattern
            words.append(word)
        return cls(num_inputs, num_patterns, words)

    @classmethod
    def from_patterns(cls, patterns: Sequence[Sequence[int | bool]]) -> "PatternSet":
        """Build from an explicit list of patterns (each a list of input values)."""
        if not patterns:
            raise ValueError("at least one pattern is required")
        num_inputs = len(patterns[0])
        result = cls(num_inputs)
        for pattern in patterns:
            result.add_pattern(pattern)
        return result

    @classmethod
    def from_input_strings(cls, strings: Sequence[str]) -> "PatternSet":
        """Build from one bit-string per input, as printed in the paper's example.

        ``strings[i][j]`` is the value of input ``i`` under pattern ``j``;
        the Fig. 1 pattern block is five 10-character strings.
        """
        if not strings:
            raise ValueError("at least one input string is required")
        lengths = {len(s) for s in strings}
        if len(lengths) != 1:
            raise ValueError(f"all input strings must have equal length, got lengths {sorted(lengths)}")
        num_patterns = lengths.pop()
        words = []
        for text in strings:
            if any(c not in "01" for c in text):
                raise ValueError(f"invalid pattern string {text!r}")
            word = 0
            for position, char in enumerate(text):
                if char == "1":
                    word |= 1 << position
            words.append(word)
        return cls(len(strings), num_patterns, words)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def mask(self) -> int:
        """Bit mask covering all stored patterns."""
        return (1 << self.num_patterns) - 1 if self.num_patterns else 0

    def input_word(self, index: int) -> int:
        """Packed values of input ``index`` across all patterns."""
        return self.words[index]

    def pattern(self, index: int) -> tuple[int, ...]:
        """The ``index``-th pattern as a tuple of bits (input 0 first)."""
        if not 0 <= index < self.num_patterns:
            raise IndexError(f"pattern index {index} out of range")
        return tuple((self.words[i] >> index) & 1 for i in range(self.num_inputs))

    def iter_patterns(self) -> Iterator[tuple[int, ...]]:
        """Iterate over all patterns."""
        return (self.pattern(i) for i in range(self.num_patterns))

    def pattern_string(self, index: int) -> str:
        """The ``index``-th pattern as a bit string (input 0 first)."""
        return "".join(str(b) for b in self.pattern(index))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_pattern(self, values: Sequence[int | bool]) -> None:
        """Append one pattern (a value per input)."""
        if len(values) != self.num_inputs:
            raise ValueError(f"expected {self.num_inputs} values, got {len(values)}")
        position = self.num_patterns
        for index, value in enumerate(values):
            if value:
                self.words[index] |= 1 << position
        self.num_patterns += 1

    def extend(self, other: "PatternSet") -> None:
        """Append every pattern of another set over the same inputs."""
        if other.num_inputs != self.num_inputs:
            raise ValueError("cannot extend with a pattern set over a different input count")
        shift = self.num_patterns
        for index in range(self.num_inputs):
            self.words[index] |= other.words[index] << shift
        self.num_patterns += other.num_patterns

    def copy(self) -> "PatternSet":
        """Independent copy of this pattern set."""
        return PatternSet(self.num_inputs, self.num_patterns, list(self.words))

    def __len__(self) -> int:
        return self.num_patterns

    def __repr__(self) -> str:
        return f"PatternSet(inputs={self.num_inputs}, patterns={self.num_patterns})"
