"""SAT-guided initial simulation patterns (Section IV-A of the paper).

Purely random patterns leave many gates with degenerate signatures:
all-zero / all-one signatures (which look like constants) and very low
toggle-rate signatures (which inflate candidate equivalence classes).  The
two-round SAT-guided generator of the paper -- following Amaru et al.,
"SAT-sweeping enhanced for logic synthesis" (DAC'20) -- formulates the
missing value as a SAT constraint and lets the solver produce the pattern:

* round 1 targets gates whose signature is constant so far: the solver is
  asked for an input pattern producing the opposite value; if none exists
  the gate is *proved* constant, feeding constant propagation (``Sc``);
* round 2 targets gates with highly biased signatures (very few ones or
  very few zeros): a pattern producing the minority value is requested,
  which sharpens the equivalence-class split (``Se``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..networks.aig import Aig
from ..sat.circuit import CircuitSolver, EquivalenceStatus
from .bitwise import simulate_aig
from .patterns import PatternSet

__all__ = ["SatGuidedPatterns", "sat_guided_patterns"]


@dataclass
class SatGuidedPatterns:
    """Output of the two-round SAT-guided pattern generation.

    Attributes
    ----------
    constant_patterns:
        ``Sc`` -- the round-1 pattern set used for constant propagation.
    equivalence_patterns:
        ``Se`` -- the round-2 pattern set used to seed equivalence classes.
    proven_constants:
        Nodes proved constant during round 1, with their constant value;
        these no longer need SAT calls during sweeping.
    sat_queries:
        Number of SAT queries spent generating the patterns.
    """

    constant_patterns: PatternSet
    equivalence_patterns: PatternSet
    proven_constants: dict[int, bool] = field(default_factory=dict)
    sat_queries: int = 0


def sat_guided_patterns(
    aig: Aig,
    solver: CircuitSolver | None = None,
    num_random: int = 64,
    seed: int = 1,
    bias_threshold: int = 1,
    max_queries_per_round: int = 16,
    resimulation_interval: int = 8,
    conflict_limit: int | None = 1_000,
) -> SatGuidedPatterns:
    """Generate the two-round SAT-guided pattern sets ``(Sc, Se)``.

    ``bias_threshold`` is the number of minority values below which a
    signature counts as "biased" in round 2.  ``max_queries_per_round``
    bounds the SAT effort, as the paper does through its runtime budget;
    re-simulation happens every ``resimulation_interval`` new patterns
    rather than after every query.
    """
    if solver is None:
        solver = CircuitSolver(aig)
    queries = 0
    proven_constants: dict[int, bool] = {}

    # ---- round 1: disprove (or prove) constant-looking signatures --------
    patterns_c = PatternSet.random(aig.num_pis, num_random, seed)
    result = simulate_aig(aig, patterns_c)
    round_queries = 0
    pending_patterns = 0
    for node in aig.topological_order():
        if round_queries >= max_queries_per_round:
            break
        constant = result.is_constant(node)
        if constant is None:
            continue
        round_queries += 1
        queries += 1
        outcome = solver.prove_constant(Aig.literal(node), constant, conflict_limit)
        if outcome.status is EquivalenceStatus.EQUIVALENT:
            proven_constants[node] = constant
        elif outcome.status is EquivalenceStatus.NOT_EQUIVALENT and outcome.counterexample is not None:
            patterns_c.add_pattern(outcome.counterexample)
            pending_patterns += 1
            if pending_patterns >= resimulation_interval:
                result = simulate_aig(aig, patterns_c)
                pending_patterns = 0

    # ---- round 2: sharpen biased signatures -------------------------------
    patterns_e = patterns_c.copy()
    result = simulate_aig(aig, patterns_e)
    round_queries = 0
    pending_patterns = 0
    for node in aig.topological_order():
        if round_queries >= max_queries_per_round:
            break
        if node in proven_constants:
            continue
        ones = bin(result.signature(node)).count("1")
        zeros = result.num_patterns - ones
        minority_value = ones <= zeros
        if min(ones, zeros) > bias_threshold:
            continue
        round_queries += 1
        queries += 1
        outcome = solver.prove_constant(Aig.literal(node), not minority_value, conflict_limit)
        if outcome.status is EquivalenceStatus.EQUIVALENT:
            proven_constants[node] = not minority_value
        elif outcome.status is EquivalenceStatus.NOT_EQUIVALENT and outcome.counterexample is not None:
            patterns_e.add_pattern(outcome.counterexample)
            pending_patterns += 1
            if pending_patterns >= resimulation_interval:
                result = simulate_aig(aig, patterns_e)
                pending_patterns = 0

    return SatGuidedPatterns(
        constant_patterns=patterns_c,
        equivalence_patterns=patterns_e,
        proven_constants=proven_constants,
        sat_queries=queries,
    )
