"""Circuit simulation: patterns, signatures, bitwise baselines, the STP simulator.

The package contains both sides of the paper's Table I comparison -- the
word-parallel / per-pattern baselines (:mod:`repro.simulation.bitwise`)
and the STP-based simulator of Algorithm 1
(:mod:`repro.simulation.stp_simulator`) -- plus the incremental simulator
used by the FRAIG baseline sweeper and the SAT-guided pattern generator of
Section IV-A.
"""

from .patterns import PatternSet
from .signatures import (
    SimulationResult,
    signature_to_bits,
    signature_from_bits,
    signature_to_string,
    canonical_signature,
    signature_toggle_rate,
)
from .bitwise import (
    simulate_aig,
    simulate_aig_words,
    simulate_aig_nodes,
    simulate_klut_per_pattern,
    simulate_klut_minterm,
    aig_po_signatures,
    klut_po_signatures,
    node_truth_tables,
)
from .incremental import IncrementalAigSimulator
from .stp_simulator import (
    StpSimulator,
    simulate_klut_stp,
    cut_truth_table_stp,
    stp_aig_truth_table,
    common_window_leaves,
    stp_window_truth_tables,
    compute_pi_supports,
    compute_local_truth_tables,
    expand_truth_table,
    cut_limit_for_patterns,
)
from .sat_guided import SatGuidedPatterns, sat_guided_patterns

__all__ = [
    "PatternSet",
    "SimulationResult",
    "signature_to_bits",
    "signature_from_bits",
    "signature_to_string",
    "canonical_signature",
    "signature_toggle_rate",
    "simulate_aig",
    "simulate_aig_words",
    "simulate_aig_nodes",
    "simulate_klut_per_pattern",
    "simulate_klut_minterm",
    "aig_po_signatures",
    "klut_po_signatures",
    "node_truth_tables",
    "IncrementalAigSimulator",
    "StpSimulator",
    "simulate_klut_stp",
    "cut_truth_table_stp",
    "stp_aig_truth_table",
    "common_window_leaves",
    "stp_window_truth_tables",
    "compute_pi_supports",
    "compute_local_truth_tables",
    "expand_truth_table",
    "cut_limit_for_patterns",
    "SatGuidedPatterns",
    "sat_guided_patterns",
]
