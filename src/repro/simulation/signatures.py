"""Simulation signatures.

The *simulation signature* of a node is the ordered set of values it takes
under every pattern (Section II-A).  Signatures are packed integers (bit
``j`` = value under pattern ``j``), the same layout as
:class:`~repro.simulation.patterns.PatternSet` words, so bitwise equality
compares whole signatures at once.

:class:`SimulationResult` bundles the signatures of every node of one
simulation run and offers the queries the sweeper needs: per-node access,
constant detection, polarity-canonical signatures (equivalence up to
complementation) and toggle rates (used by the SAT-guided pattern
generator of Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = [
    "SimulationResult",
    "signature_to_bits",
    "signature_from_bits",
    "signature_to_string",
    "canonical_signature",
    "signature_toggle_rate",
]


def signature_to_bits(signature: int, num_patterns: int) -> list[int]:
    """Unpack a signature into a list of bits (pattern 0 first)."""
    return [(signature >> i) & 1 for i in range(num_patterns)]


def signature_from_bits(bits: Iterable[int | bool]) -> int:
    """Pack a list of bits (pattern 0 first) into a signature integer."""
    signature = 0
    for position, bit in enumerate(bits):
        if bit:
            signature |= 1 << position
    return signature


def signature_to_string(signature: int, num_patterns: int) -> str:
    """Bit-string rendering, pattern 0 leftmost."""
    return "".join(str(b) for b in signature_to_bits(signature, num_patterns))


def canonical_signature(signature: int, num_patterns: int) -> tuple[int, bool]:
    """Polarity-canonical signature: complement so that bit 0 is zero.

    Returns ``(canonical, inverted)``; two nodes are equivalence-class
    candidates *up to complementation* exactly when their canonical
    signatures are equal.
    """
    mask = (1 << num_patterns) - 1
    if signature & 1:
        return (~signature) & mask, True
    return signature & mask, False


def signature_toggle_rate(signature: int, num_patterns: int) -> float:
    """Toggle rate of a signature (footnote 1 of the paper)."""
    if num_patterns < 2:
        return 0.0
    bits = signature_to_bits(signature, num_patterns)
    toggles = sum(1 for a, b in zip(bits, bits[1:]) if a != b)
    return toggles / num_patterns


@dataclass
class SimulationResult:
    """Signatures of every node produced by one simulation run.

    Attributes
    ----------
    num_patterns:
        Number of patterns that were simulated.
    signatures:
        Map from node index to packed signature.
    """

    num_patterns: int
    signatures: dict[int, int] = field(default_factory=dict)

    @property
    def mask(self) -> int:
        """Bit mask covering all simulated patterns."""
        return (1 << self.num_patterns) - 1 if self.num_patterns else 0

    def signature(self, node: int) -> int:
        """Signature of one node."""
        return self.signatures[node]

    def has_node(self, node: int) -> bool:
        """True if the run produced a signature for ``node``."""
        return node in self.signatures

    def set_signature(self, node: int, signature: int) -> None:
        """Store or overwrite the signature of one node."""
        self.signatures[node] = signature & self.mask

    def value(self, node: int, pattern: int) -> bool:
        """Value of ``node`` under pattern ``pattern``."""
        return bool((self.signatures[node] >> pattern) & 1)

    def bits(self, node: int) -> list[int]:
        """Signature of ``node`` as a list of bits."""
        return signature_to_bits(self.signatures[node], self.num_patterns)

    def bit_string(self, node: int) -> str:
        """Signature of ``node`` as a bit string (pattern 0 leftmost)."""
        return signature_to_string(self.signatures[node], self.num_patterns)

    def is_constant(self, node: int) -> bool | None:
        """Constant value suggested by the signature, or ``None`` if mixed."""
        signature = self.signatures[node]
        if signature == 0:
            return False
        if signature == self.mask:
            return True
        return None

    def canonical(self, node: int) -> tuple[int, bool]:
        """Polarity-canonical signature of ``node``."""
        return canonical_signature(self.signatures[node], self.num_patterns)

    def toggle_rate(self, node: int) -> float:
        """Toggle rate of the node's signature."""
        return signature_toggle_rate(self.signatures[node], self.num_patterns)

    def group_by_canonical(self, nodes: Iterable[int] | None = None) -> dict[int, list[int]]:
        """Group nodes whose canonical signatures coincide (candidate classes)."""
        groups: dict[int, list[int]] = {}
        for node in nodes if nodes is not None else self.signatures:
            key, _inverted = self.canonical(node)
            groups.setdefault(key, []).append(node)
        return groups

    def merge(self, other: Mapping[int, int]) -> None:
        """Absorb signatures from another node-to-signature map."""
        for node, signature in other.items():
            self.signatures[node] = signature & self.mask

    def __len__(self) -> int:
        return len(self.signatures)

    def __repr__(self) -> str:
        return f"SimulationResult(patterns={self.num_patterns}, nodes={len(self.signatures)})"
