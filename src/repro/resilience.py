"""Resilience layer: budgets, transactional checkpoints and fault injection.

Optimization flows that serve jobs (the ROADMAP's ``repro serve`` and
partition-parallel directions) need three guarantees the transforms
alone do not give:

1. **Budgets** -- a :class:`Budget` carries a wall-clock deadline, a
   shared SAT-conflict pool and a mutation-count cap through the whole
   execution stack.  Long-running engines poll :meth:`Budget.checkpoint`
   cooperatively (:class:`~repro.rewriting.passes.PassManager`,
   :class:`~repro.sweeping.fraig.FraigSweeper`,
   :class:`~repro.cuts.engine.CutEngine` enumeration,
   :func:`~repro.networks.mapping.technology_map`, and the CDCL conflict
   loop itself); exhaustion raises a typed :class:`BudgetExceeded`
   instead of running away.
2. **Checkpoints** -- a :class:`NetworkCheckpoint` snapshots a network
   before a pass runs and restores it on failure, so a raising,
   over-budget or verification-failing pass never leaks a half-mutated
   network to the caller.
3. **Fault injection** -- a deterministic :class:`FaultInjector` drives
   the chaos fuzz suite: it raises at the Nth mutation event observed in
   the current execution context or corrupts a mutation-listener
   payload, exercising the rollback machinery on demand.

The ambient mutation observers (:mod:`repro.networks.incremental`) are
**context-scoped** (a :class:`contextvars.ContextVar` registry): a
budget's mutation counter or a fault injector activated inside one
service job observes that job's mutations only, never a concurrent
job's, while single-threaded flows behave exactly as before.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterator

from .networks.incremental import (
    IncrementalNetworkMixin,
    add_ambient_mutation_observer,
    remove_ambient_mutation_observer,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from .networks.aig import Aig
    from .networks.klut import KLutNetwork

__all__ = [
    "ResilienceError",
    "BudgetExceeded",
    "VerificationFailed",
    "InjectedFault",
    "Budget",
    "NetworkCheckpoint",
    "FaultInjector",
    "simulation_equivalent",
]


class ResilienceError(Exception):
    """Base class of the typed errors raised by the resilience layer."""


class BudgetExceeded(ResilienceError):
    """A cooperative budget checkpoint found a pool exhausted.

    ``resource`` names the exhausted pool (``"deadline"``,
    ``"conflicts"`` or ``"mutations"``); ``where`` is the checkpoint
    site that noticed (e.g. ``"cdcl"``, ``"fraig"``, ``"map"``).
    """

    def __init__(self, resource: str, where: str = "") -> None:
        self.resource = resource
        self.where = where
        site = f" at {where}" if where else ""
        super().__init__(f"{resource} budget exhausted{site}")


class VerificationFailed(ResilienceError):
    """A verification-gated commit found the pass result non-equivalent."""


class InjectedFault(RuntimeError):
    """The error a :class:`FaultInjector` raises at its trigger point.

    Deliberately *not* a :class:`ResilienceError`: it stands in for an
    arbitrary bug inside a pass, so the transactional machinery must
    absorb it through the generic ``Exception`` path, exactly as it
    would a real defect.
    """


class Budget:
    """Cooperative resource budget: deadline, conflict pool, mutation cap.

    All three pools are optional (``None`` = unlimited).  ``wall_clock``
    is converted to a deadline at construction time.  ``conflicts`` is a
    *shared* pool: every budget-aware SAT call draws from it via
    :meth:`conflict_allowance` / :meth:`spend_conflicts`, so the whole
    flow -- not each call -- is bounded.  ``mutations`` caps the number
    of network mutation events observed while
    :meth:`observe_mutations` is active.

    Sub-budgets (:meth:`with_deadline`, used for per-pass timeouts)
    share the parent's conflict and mutation pools but may tighten the
    deadline; exceeding the tightened deadline aborts only the current
    pass while the parent flow keeps its remaining time.

    ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        wall_clock: float | None = None,
        conflicts: int | None = None,
        mutations: int | None = None,
        clock: Callable[[], float] | None = None,
        _parent: "Budget | None" = None,
    ) -> None:
        if _parent is not None:
            self._clock = _parent._clock
            self._root = _parent._root
        else:
            self._clock = clock if clock is not None else time.monotonic
            self._root = self
        self.deadline: float | None = None
        if wall_clock is not None:
            self.deadline = self._clock() + wall_clock
        if _parent is not None and _parent.deadline is not None:
            self.deadline = (
                _parent.deadline if self.deadline is None else min(self.deadline, _parent.deadline)
            )
        if self._root is self:
            self._conflicts_remaining = conflicts
            self._mutations_remaining = mutations
            self.conflicts_spent = 0
            self.mutations_seen = 0
        self._observer_depth = 0

    # -- deadline ------------------------------------------------------

    @property
    def expired(self) -> bool:
        """True once the wall-clock deadline has passed."""
        return self.deadline is not None and self._clock() >= self.deadline

    def time_remaining(self) -> float | None:
        """Seconds until the deadline, or ``None`` when unbounded."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self._clock())

    def checkpoint(self, where: str = "") -> None:
        """Cooperative poll: raise :class:`BudgetExceeded` on an expired deadline."""
        if self.deadline is not None and self._clock() >= self.deadline:
            raise BudgetExceeded("deadline", where)

    def with_deadline(self, wall_clock: float | None) -> "Budget":
        """Sub-budget sharing this budget's pools with a tightened deadline.

        The sub-budget's deadline is ``min(parent deadline, now +
        wall_clock)``; conflict and mutation pools stay shared with the
        root, so per-pass timeouts never extend the flow's resources.
        """
        return Budget(wall_clock=wall_clock, _parent=self)

    # -- shared SAT-conflict pool --------------------------------------

    def conflict_allowance(self, request: int | None, where: str = "") -> int | None:
        """Per-call conflict limit drawn from the shared pool.

        Returns the tighter of ``request`` and the pool's remainder
        (``None`` = unlimited).  An already-empty pool raises
        :class:`BudgetExceeded` -- the caller must not start the call.
        """
        remaining = self._root._conflicts_remaining
        if remaining is None:
            return request
        if remaining <= 0:
            raise BudgetExceeded("conflicts", where)
        if request is None:
            return remaining
        return min(request, remaining)

    def spend_conflicts(self, conflicts: int) -> None:
        """Charge ``conflicts`` solver conflicts against the shared pool."""
        root = self._root
        root.conflicts_spent += conflicts
        if root._conflicts_remaining is not None:
            root._conflicts_remaining = max(0, root._conflicts_remaining - conflicts)

    # -- mutation cap --------------------------------------------------

    def note_mutation(self, where: str = "") -> None:
        """Count one mutation event; raise once the cap is crossed."""
        root = self._root
        root.mutations_seen += 1
        if root._mutations_remaining is not None:
            if root._mutations_remaining <= 0:
                raise BudgetExceeded("mutations", where)
            root._mutations_remaining -= 1

    @contextmanager
    def observe_mutations(self) -> Iterator["Budget"]:
        """Context manager counting every network mutation in this context.

        Registers an ambient mutation observer
        (:func:`~repro.networks.incremental.add_ambient_mutation_observer`)
        so mutations inside pass-internal working clones are seen too --
        but only those of the current thread/context, never a concurrent
        job's.  Nested activations register the observer once.
        """

        def _observer(
            network: IncrementalNetworkMixin,
            old_node: int,
            replacement: int,
            rewired_gates: tuple[int, ...],
        ) -> None:
            self.note_mutation("mutation-observer")

        if self._observer_depth == 0:
            add_ambient_mutation_observer(_observer)
            self._active_observer = _observer
        self._observer_depth += 1
        try:
            yield self
        finally:
            self._observer_depth -= 1
            if self._observer_depth == 0:
                remove_ambient_mutation_observer(self._active_observer)


def simulation_equivalent(
    reference: "Aig | KLutNetwork",
    candidate: "Aig | KLutNetwork",
    num_patterns: int = 256,
    seed: int = 1,
    exhaustive_limit: int = 10,
) -> bool:
    """Word-parallel simulation cross-check between two pipeline networks.

    Exhaustive for networks of up to ``exhaustive_limit`` primary inputs
    (a complete proof there), ``num_patterns`` random patterns
    otherwise.  Kind-generic: either side may be an AIG or a mapped
    k-LUT network.  This is the verification-gated-commit check -- cheap
    enough to run per pass, unlike a full CEC.
    """
    from .simulation.bitwise import (
        aig_po_signatures,
        klut_po_signatures,
        simulate_aig,
        simulate_klut_minterm,
    )
    from .simulation.patterns import PatternSet

    if reference.num_pis != candidate.num_pis or reference.num_pos != candidate.num_pos:
        return False
    if reference.num_pis <= exhaustive_limit:
        patterns = PatternSet.exhaustive(reference.num_pis)
    else:
        patterns = PatternSet.random(reference.num_pis, num_patterns, seed)

    def signatures(network: "Aig | KLutNetwork") -> list[int]:
        from .networks.klut import KLutNetwork

        if isinstance(network, KLutNetwork):
            return klut_po_signatures(network, simulate_klut_minterm(network, patterns))
        return aig_po_signatures(network, simulate_aig(network, patterns))

    return signatures(reference) == signatures(candidate)


class NetworkCheckpoint:
    """Rollback point for one transactional pass over ``network``.

    Takes an eager backup ``clone()`` and journals every mutation and
    choice event fired *by the protected network itself* (per-network
    listeners -- pass-internal working copies are separate objects and
    do not touch the original).  On :meth:`restore`, the cheap path
    returns the original object untouched when the journal is empty and
    the structural fingerprint still matches -- the common case, since
    every pass clones its input internally -- preserving object
    identity, attached listeners and caches; otherwise the backup clone
    is returned.  :meth:`commit` and :meth:`restore` both detach the
    journal listeners.
    """

    def __init__(self, network: "Aig | KLutNetwork") -> None:
        self.network = network
        self.backup = network.clone()
        self.journal: list[tuple[int, int, tuple[int, ...]]] = []
        self._fingerprint = self._take_fingerprint(network)
        self._attached = False

        def _on_mutation(old_node: int, replacement: int, rewired: tuple[int, ...]) -> None:
            self.journal.append((old_node, replacement, rewired))

        def _on_choice(representative: int, members: tuple[int, ...]) -> None:
            self.journal.append((representative, -1, members))

        self._mutation_listener = _on_mutation
        self._choice_listener = _on_choice
        network.add_mutation_listener(_on_mutation)
        network.add_choice_listener(_on_choice)
        self._attached = True

    @staticmethod
    def _take_fingerprint(network: "Aig | KLutNetwork") -> tuple[int, int, int, tuple[object, ...]]:
        return (
            network.num_nodes,
            network.num_pis,
            network.num_gates,
            tuple(network.pos),
        )

    @property
    def pristine(self) -> bool:
        """True while the protected network shows no observed or structural change."""
        return not self.journal and self._take_fingerprint(self.network) == self._fingerprint

    def _detach(self) -> None:
        if self._attached:
            self.network.remove_mutation_listener(self._mutation_listener)
            self.network.remove_choice_listener(self._choice_listener)
            self._attached = False

    def commit(self) -> None:
        """Accept the pass result: drop the journal listeners and the backup."""
        self._detach()

    def restore(self) -> "Aig | KLutNetwork":
        """Roll back: return the last good network.

        Returns the original object when it is still pristine (no
        journaled events, fingerprint unchanged), else the backup clone.
        """
        self._detach()
        if self.pristine:
            return self.network
        return self.backup


class FaultInjector:
    """Deterministic fault injection against the ambient mutation bus.

    Exactly one mode is active per injector:

    * ``raise_at=n`` -- raise :class:`InjectedFault` on the *n*-th
      (1-based) mutation event observed in the current execution
      context, simulating a pass crashing mid-flight after ``n - 1``
      mutations.
    * ``corrupt_at=n`` -- on the *n*-th event, re-deliver a corrupted
      payload (a bogus ``(old_node, replacement, rewired_gates)``
      triple) to the mutating network's own listeners, simulating a
      listener-bus bug that desynchronises attached engines.

    SAT-budget exhaustion needs no injector: pass
    ``Budget(conflicts=<small>)`` to the flow.  ``events_seen`` counts
    all observed events; ``fired`` records whether the trigger was
    reached.  Use as a context manager (:meth:`inject`).
    """

    def __init__(self, raise_at: int | None = None, corrupt_at: int | None = None) -> None:
        if (raise_at is None) == (corrupt_at is None):
            raise ValueError("exactly one of raise_at / corrupt_at must be set")
        if (raise_at is not None and raise_at < 1) or (corrupt_at is not None and corrupt_at < 1):
            raise ValueError("trigger event index is 1-based and must be >= 1")
        self.raise_at = raise_at
        self.corrupt_at = corrupt_at
        self.events_seen = 0
        self.fired = False
        self._reentrant = False

    def _observer(
        self,
        network: IncrementalNetworkMixin,
        old_node: int,
        replacement: int,
        rewired_gates: tuple[int, ...],
    ) -> None:
        if self._reentrant:
            return
        self.events_seen += 1
        if self.raise_at is not None and self.events_seen == self.raise_at:
            self.fired = True
            raise InjectedFault(f"injected fault at mutation event {self.events_seen}")
        if self.corrupt_at is not None and self.events_seen == self.corrupt_at:
            self.fired = True
            bogus_gates = tuple(g + 1 for g in rewired_gates) or (old_node,)
            self._reentrant = True
            try:
                for listener in list(network._mutation_listeners):
                    listener(replacement >> 1 if replacement > 1 else old_node, 1, bogus_gates)
            finally:
                self._reentrant = False

    @contextmanager
    def inject(self) -> Iterator["FaultInjector"]:
        """Activate the injector for the duration of the context."""
        add_ambient_mutation_observer(self._observer)
        try:
            yield self
        finally:
            remove_ambient_mutation_observer(self._observer)
