"""Logic matrices and structural matrices used by semi-tensor product algebra.

The semi-tensor product (STP) framework encodes Boolean values as 2x1
*logic vectors* and Boolean operators as 2x(2^k) *structural matrices*
(Definition 2 of the paper).  Throughout this package the encoding follows
the paper:

* ``True``  is the column vector ``[1, 0]^T`` (written ``delta_2^1``),
* ``False`` is the column vector ``[0, 1]^T`` (written ``delta_2^2``).

A structural matrix ``M_sigma`` of a k-ary operator ``sigma`` has one column
per input combination.  Column ``j`` (0-based, counting from the left) holds
the logic vector of ``sigma`` applied to the input combination whose bits,
read most-significant first, are ``(1 - bit)`` of the binary expansion of
``j`` -- i.e. column 0 corresponds to all-True inputs and the last column to
all-False inputs.  With this convention ``sigma(x1, ..., xk)`` equals
``M_sigma <| x1 <| ... <| xk`` where ``<|`` denotes the STP.

All matrices are small dense ``numpy`` integer arrays.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "TRUE_VECTOR",
    "FALSE_VECTOR",
    "bool_to_vector",
    "vector_to_bool",
    "vectors_to_bits",
    "bits_to_vectors",
    "is_logic_vector",
    "is_logic_matrix",
    "identity",
    "structural_matrix_from_truth_table",
    "truth_table_from_structural_matrix",
    "structural_matrix",
    "swap_matrix",
    "power_reducing_matrix",
    "front_maintaining_operator",
    "rear_maintaining_operator",
    "M_NOT",
    "M_AND",
    "M_OR",
    "M_XOR",
    "M_XNOR",
    "M_NAND",
    "M_NOR",
    "M_IMPLIES",
    "M_EQUIV",
    "M_BUF",
    "OPERATOR_MATRICES",
]

_INT = np.int64

#: Logic vector for Boolean ``True`` (``delta_2^1``).
TRUE_VECTOR = np.array([[1], [0]], dtype=_INT)

#: Logic vector for Boolean ``False`` (``delta_2^2``).
FALSE_VECTOR = np.array([[0], [1]], dtype=_INT)


def bool_to_vector(value: bool) -> np.ndarray:
    """Return the 2x1 logic vector encoding ``value``.

    >>> bool_to_vector(True).ravel().tolist()
    [1, 0]
    """
    return TRUE_VECTOR.copy() if value else FALSE_VECTOR.copy()


def vector_to_bool(vector: np.ndarray) -> bool:
    """Decode a 2x1 logic vector back into a Python bool.

    Raises :class:`ValueError` if ``vector`` is not a valid logic vector.
    """
    flat = np.asarray(vector).ravel()
    if flat.shape != (2,):
        raise ValueError(f"logic vector must have exactly two entries, got shape {np.asarray(vector).shape}")
    if flat[0] == 1 and flat[1] == 0:
        return True
    if flat[0] == 0 and flat[1] == 1:
        return False
    raise ValueError(f"not a logic vector: {flat.tolist()}")


def bits_to_vectors(bits: Iterable[int | bool]) -> list[np.ndarray]:
    """Convert an iterable of bits into a list of logic vectors."""
    return [bool_to_vector(bool(b)) for b in bits]


def vectors_to_bits(vectors: Iterable[np.ndarray]) -> list[int]:
    """Convert logic vectors back into integer bits (1 for True)."""
    return [int(vector_to_bool(v)) for v in vectors]


def is_logic_vector(array: np.ndarray) -> bool:
    """Return True if ``array`` is a 2x1 (or length-2) logic vector."""
    flat = np.asarray(array).ravel()
    if flat.shape != (2,):
        return False
    return sorted(flat.tolist()) == [0, 1]


def is_logic_matrix(array: np.ndarray) -> bool:
    """Return True if every column of ``array`` is a logic vector.

    This is the paper's Definition 2 check for a 2 x 2^n logic matrix,
    except that the number of columns is allowed to be any positive
    integer (structural matrices of k-ary operators have 2^k columns).
    """
    matrix = np.asarray(array)
    if matrix.ndim != 2 or matrix.shape[0] != 2 or matrix.shape[1] < 1:
        return False
    column_sums_ok = np.all(matrix.sum(axis=0) == 1)
    binary_ok = np.all((matrix == 0) | (matrix == 1))
    return bool(column_sums_ok and binary_ok)


def identity(n: int) -> np.ndarray:
    """Integer identity matrix of dimension ``n``."""
    if n < 1:
        raise ValueError("identity dimension must be positive")
    return np.eye(n, dtype=_INT)


def structural_matrix_from_truth_table(truth_bits: Sequence[int], arity: int | None = None) -> np.ndarray:
    """Build the 2 x 2^k structural matrix of an operator from its truth table.

    ``truth_bits`` lists the operator outputs for input combinations in
    *descending* order, i.e. ``truth_bits[0]`` is the output for the
    all-True assignment and ``truth_bits[-1]`` the output for the all-False
    assignment.  This matches the column convention of structural matrices
    and the paper's "read from right to left" remark (the usual truth table
    listed for increasing input integers is simply reversed).

    >>> structural_matrix_from_truth_table([1, 0, 0, 0]).tolist()  # AND
    [[1, 0, 0, 0], [0, 1, 1, 1]]
    """
    bits = [int(bool(b)) for b in truth_bits]
    size = len(bits)
    if size == 0 or size & (size - 1):
        raise ValueError(f"truth table length must be a power of two, got {size}")
    if arity is not None and size != 1 << arity:
        raise ValueError(f"truth table length {size} does not match arity {arity}")
    matrix = np.zeros((2, size), dtype=_INT)
    for column, bit in enumerate(bits):
        matrix[0 if bit else 1, column] = 1
    return matrix


def truth_table_from_structural_matrix(matrix: np.ndarray) -> list[int]:
    """Inverse of :func:`structural_matrix_from_truth_table`."""
    m = np.asarray(matrix)
    if not is_logic_matrix(m):
        raise ValueError("not a logic matrix")
    return [int(m[0, column]) for column in range(m.shape[1])]


# ---------------------------------------------------------------------------
# Structural matrices of the common operators.
# Columns are ordered (T,T), (T,F), (F,T), (F,F) for binary operators.
# ---------------------------------------------------------------------------

M_NOT = structural_matrix_from_truth_table([0, 1])
M_BUF = structural_matrix_from_truth_table([1, 0])
M_AND = structural_matrix_from_truth_table([1, 0, 0, 0])
M_OR = structural_matrix_from_truth_table([1, 1, 1, 0])
M_XOR = structural_matrix_from_truth_table([0, 1, 1, 0])
M_XNOR = structural_matrix_from_truth_table([1, 0, 0, 1])
M_NAND = structural_matrix_from_truth_table([0, 1, 1, 1])
M_NOR = structural_matrix_from_truth_table([0, 0, 0, 1])
M_IMPLIES = structural_matrix_from_truth_table([1, 0, 1, 1])
M_EQUIV = M_XNOR

#: Mapping from operator name to structural matrix.
OPERATOR_MATRICES: dict[str, np.ndarray] = {
    "not": M_NOT,
    "buf": M_BUF,
    "and": M_AND,
    "or": M_OR,
    "xor": M_XOR,
    "xnor": M_XNOR,
    "nand": M_NAND,
    "nor": M_NOR,
    "implies": M_IMPLIES,
    "equiv": M_EQUIV,
}


def structural_matrix(name: str) -> np.ndarray:
    """Look up the structural matrix of a named operator.

    >>> structural_matrix("nand").tolist()
    [[0, 1, 1, 1], [1, 0, 0, 0]]
    """
    key = name.lower()
    if key not in OPERATOR_MATRICES:
        raise KeyError(f"unknown operator {name!r}; known: {sorted(OPERATOR_MATRICES)}")
    return OPERATOR_MATRICES[key].copy()


def swap_matrix(m: int = 2, n: int = 2) -> np.ndarray:
    """Return the (mn x mn) swap matrix ``W_[m,n]``.

    The swap matrix reorders a Kronecker product of vectors:
    ``W_[m,n] (x kron y) = y kron x`` for ``x`` of dimension m and ``y`` of
    dimension n.  For logic vectors (m = n = 2) this realises variable
    swapping when normalising an STP expression into canonical form.
    """
    if m < 1 or n < 1:
        raise ValueError("swap matrix dimensions must be positive")
    w = np.zeros((m * n, m * n), dtype=_INT)
    for i in range(m):
        for j in range(n):
            # column index of (e_i kron e_j), row index of (e_j kron e_i)
            w[j * m + i, i * n + j] = 1
    return w


def power_reducing_matrix() -> np.ndarray:
    """Return the power-reducing matrix ``M_r`` with ``x kron x = M_r x``.

    ``M_r`` is the 4x2 matrix ``delta_4[1, 4]``: it maps ``True`` to the
    first basis vector of dimension 4 (True kron True) and ``False`` to the
    fourth (False kron False).  It is used to merge repeated variables when
    computing the canonical form of an STP expression.
    """
    m = np.zeros((4, 2), dtype=_INT)
    m[0, 0] = 1
    m[3, 1] = 1
    return m


def front_maintaining_operator() -> np.ndarray:
    """Return the front-maintaining operator ``D_f`` with ``D_f x y = x``."""
    # Columns: (T,T)->T, (T,F)->T, (F,T)->F, (F,F)->F
    return structural_matrix_from_truth_table([1, 1, 0, 0])


def rear_maintaining_operator() -> np.ndarray:
    """Return the rear-maintaining operator ``D_r`` with ``D_r x y = y``."""
    # Columns: (T,T)->T, (T,F)->F, (F,T)->T, (F,F)->F
    return structural_matrix_from_truth_table([1, 0, 1, 0])
