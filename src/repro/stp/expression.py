"""Boolean expression trees and their conversion into STP canonical forms.

This module provides a small, explicit expression AST (variables,
constants, NOT and the usual binary connectives), a recursive-descent
parser for a conventional infix syntax, conventional evaluation, and the
conversion into the semi-tensor-product canonical form of
:mod:`repro.stp.canonical`.

The expression syntax accepted by :func:`parse_expression`::

    expr    := equiv
    equiv   := implies ( ("<->" | "==") implies )*
    implies := or ( "->" or )*          (right associative)
    or      := xor ( ("|" | "+") xor )*
    xor     := and ( "^" and )*
    and     := unary ( ("&" | "*") unary )*
    unary   := ("!" | "~") unary | atom
    atom    := "(" expr ")" | "0" | "1" | "true" | "false" | identifier

Example 2 from the paper (the three-liars puzzle) is expressible as
``"(a <-> !b) & (b <-> !c) & (c <-> (!a & !b))"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from .canonical import (
    STPForm,
    apply_binary,
    apply_unary,
    constant_form,
    normalize,
    variable_form,
)
from .matrices import OPERATOR_MATRICES, M_NOT

__all__ = [
    "Expression",
    "Variable",
    "Constant",
    "NotOp",
    "BinaryOp",
    "parse_expression",
    "expression_to_stp",
    "truth_table_of_expression",
    "satisfying_assignments",
]

_BINARY_OPERATORS = ("and", "or", "xor", "xnor", "nand", "nor", "implies", "equiv")


class Expression:
    """Base class of Boolean expression nodes."""

    def variables(self) -> list[str]:
        """Distinct variables of the expression, in sorted order."""
        names: set[str] = set()
        self._collect_variables(names)
        return sorted(names)

    def _collect_variables(self, into: set[str]) -> None:
        raise NotImplementedError

    def evaluate(self, assignment: Mapping[str, bool | int]) -> bool:
        """Evaluate the expression under a variable assignment."""
        raise NotImplementedError

    def to_raw_stp(self) -> STPForm:
        """Convert into an (un-normalised) STP form, variables possibly repeated.

        The raw form keeps one variable slot per *occurrence*, so its matrix
        grows exponentially with the expression size; it exists to exercise
        the textbook normalisation procedure on small formulas.  Use
        :meth:`to_stp` for anything non-trivial.
        """
        raise NotImplementedError

    def _to_canonical_stp(self) -> STPForm:
        """Bottom-up canonical construction (normalised at every node).

        Keeping every intermediate form canonical bounds the matrix width by
        ``2**distinct_variables`` instead of ``2**occurrences``.
        """
        raise NotImplementedError

    def to_stp(self, variable_order: Sequence[str] | None = None) -> STPForm:
        """Convert into the STP *canonical* form over ``variable_order``."""
        return normalize(self._to_canonical_stp(), variable_order or self.variables())

    # -- operator overloads for ergonomic construction ---------------------
    def __and__(self, other: "Expression") -> "Expression":
        return BinaryOp("and", self, other)

    def __or__(self, other: "Expression") -> "Expression":
        return BinaryOp("or", self, other)

    def __xor__(self, other: "Expression") -> "Expression":
        return BinaryOp("xor", self, other)

    def __invert__(self) -> "Expression":
        return NotOp(self)

    def implies(self, other: "Expression") -> "Expression":
        """Logical implication ``self -> other``."""
        return BinaryOp("implies", self, other)

    def iff(self, other: "Expression") -> "Expression":
        """Logical equivalence ``self <-> other``."""
        return BinaryOp("equiv", self, other)


@dataclass(frozen=True)
class Variable(Expression):
    """A named Boolean variable."""

    name: str

    def _collect_variables(self, into: set[str]) -> None:
        into.add(self.name)

    def evaluate(self, assignment: Mapping[str, bool | int]) -> bool:
        if self.name not in assignment:
            raise KeyError(f"assignment missing variable {self.name!r}")
        return bool(assignment[self.name])

    def to_raw_stp(self) -> STPForm:
        return variable_form(self.name)

    def _to_canonical_stp(self) -> STPForm:
        return variable_form(self.name)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant(Expression):
    """The Boolean constants ``True`` / ``False``."""

    value: bool

    def _collect_variables(self, into: set[str]) -> None:
        return None

    def evaluate(self, assignment: Mapping[str, bool | int]) -> bool:
        return self.value

    def to_raw_stp(self) -> STPForm:
        return constant_form(self.value)

    def _to_canonical_stp(self) -> STPForm:
        return constant_form(self.value)

    def __str__(self) -> str:
        return "1" if self.value else "0"


@dataclass(frozen=True)
class NotOp(Expression):
    """Logical negation."""

    operand: Expression

    def _collect_variables(self, into: set[str]) -> None:
        self.operand._collect_variables(into)

    def evaluate(self, assignment: Mapping[str, bool | int]) -> bool:
        return not self.operand.evaluate(assignment)

    def to_raw_stp(self) -> STPForm:
        return apply_unary(M_NOT, self.operand.to_raw_stp())

    def _to_canonical_stp(self) -> STPForm:
        return apply_unary(M_NOT, self.operand._to_canonical_stp())

    def __str__(self) -> str:
        return f"!{self.operand}" if isinstance(self.operand, (Variable, Constant)) else f"!({self.operand})"


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary connective; ``operator`` is a key of ``OPERATOR_MATRICES``."""

    operator: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.operator not in _BINARY_OPERATORS:
            raise ValueError(f"unknown binary operator {self.operator!r}; known: {_BINARY_OPERATORS}")

    def _collect_variables(self, into: set[str]) -> None:
        self.left._collect_variables(into)
        self.right._collect_variables(into)

    def evaluate(self, assignment: Mapping[str, bool | int]) -> bool:
        a = self.left.evaluate(assignment)
        b = self.right.evaluate(assignment)
        if self.operator == "and":
            return a and b
        if self.operator == "or":
            return a or b
        if self.operator == "xor":
            return a != b
        if self.operator in ("xnor", "equiv"):
            return a == b
        if self.operator == "nand":
            return not (a and b)
        if self.operator == "nor":
            return not (a or b)
        if self.operator == "implies":
            return (not a) or b
        raise AssertionError(f"unhandled operator {self.operator}")

    def to_raw_stp(self) -> STPForm:
        return apply_binary(
            OPERATOR_MATRICES[self.operator],
            self.left.to_raw_stp(),
            self.right.to_raw_stp(),
        )

    def _to_canonical_stp(self) -> STPForm:
        combined = apply_binary(
            OPERATOR_MATRICES[self.operator],
            self.left._to_canonical_stp(),
            self.right._to_canonical_stp(),
        )
        return normalize(combined)

    def __str__(self) -> str:
        symbol = {
            "and": "&",
            "or": "|",
            "xor": "^",
            "xnor": "<->",
            "equiv": "<->",
            "nand": "!&",
            "nor": "!|",
            "implies": "->",
        }[self.operator]
        return f"({self.left} {symbol} {self.right})"


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

_SYMBOL_TOKENS = ("<->", "->", "==", "(", ")", "!", "~", "&", "*", "|", "+", "^")


def _tokenize(text: str) -> Iterator[str]:
    i = 0
    length = len(text)
    while i < length:
        char = text[i]
        if char.isspace():
            i += 1
            continue
        matched = False
        for symbol in _SYMBOL_TOKENS:
            if text.startswith(symbol, i):
                yield symbol
                i += len(symbol)
                matched = True
                break
        if matched:
            continue
        if char.isalnum() or char == "_":
            start = i
            while i < length and (text[i].isalnum() or text[i] == "_"):
                i += 1
            yield text[start:i]
            continue
        raise ValueError(f"unexpected character {char!r} at position {i} in {text!r}")


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str) -> None:
        self._tokens = list(_tokenize(text))
        self._position = 0
        self._text = text

    def parse(self) -> Expression:
        expression = self._equiv()
        if self._position != len(self._tokens):
            raise ValueError(f"trailing tokens {self._tokens[self._position:]} in {self._text!r}")
        return expression

    def _peek(self) -> str | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _advance(self) -> str:
        token = self._tokens[self._position]
        self._position += 1
        return token

    def _expect(self, token: str) -> None:
        if self._peek() != token:
            raise ValueError(f"expected {token!r} at token {self._position} in {self._text!r}, got {self._peek()!r}")
        self._advance()

    def _equiv(self) -> Expression:
        node = self._implies()
        while self._peek() in ("<->", "=="):
            self._advance()
            node = BinaryOp("equiv", node, self._implies())
        return node

    def _implies(self) -> Expression:
        node = self._or()
        if self._peek() == "->":
            self._advance()
            return BinaryOp("implies", node, self._implies())
        return node

    def _or(self) -> Expression:
        node = self._xor()
        while self._peek() in ("|", "+"):
            self._advance()
            node = BinaryOp("or", node, self._xor())
        return node

    def _xor(self) -> Expression:
        node = self._and()
        while self._peek() == "^":
            self._advance()
            node = BinaryOp("xor", node, self._and())
        return node

    def _and(self) -> Expression:
        node = self._unary()
        while self._peek() in ("&", "*"):
            self._advance()
            node = BinaryOp("and", node, self._unary())
        return node

    def _unary(self) -> Expression:
        if self._peek() in ("!", "~"):
            self._advance()
            return NotOp(self._unary())
        return self._atom()

    def _atom(self) -> Expression:
        token = self._peek()
        if token is None:
            raise ValueError(f"unexpected end of expression in {self._text!r}")
        if token == "(":
            self._advance()
            node = self._equiv()
            self._expect(")")
            return node
        self._advance()
        lowered = token.lower()
        if lowered in ("0", "false"):
            return Constant(False)
        if lowered in ("1", "true"):
            return Constant(True)
        if token[0].isdigit():
            raise ValueError(f"invalid identifier {token!r} in {self._text!r}")
        return Variable(token)


def parse_expression(text: str) -> Expression:
    """Parse an infix Boolean expression into an :class:`Expression` tree."""
    return _Parser(text).parse()


def expression_to_stp(expression: Expression | str, variable_order: Sequence[str] | None = None) -> STPForm:
    """Convenience wrapper: parse if needed, then return the canonical STP form."""
    if isinstance(expression, str):
        expression = parse_expression(expression)
    return expression.to_stp(variable_order)


def truth_table_of_expression(expression: Expression | str, variable_order: Sequence[str] | None = None) -> list[int]:
    """Truth table of an expression by direct evaluation (no STP involved).

    Used as an oracle when testing the algebraic canonical-form construction.
    Index ``i`` corresponds to the assignment where ``variable_order[0]`` is
    the most significant bit of ``i``.
    """
    if isinstance(expression, str):
        expression = parse_expression(expression)
    order = list(variable_order) if variable_order is not None else expression.variables()
    table: list[int] = []
    for index in range(1 << len(order)):
        assignment = {
            name: bool((index >> (len(order) - 1 - position)) & 1)
            for position, name in enumerate(order)
        }
        table.append(int(expression.evaluate(assignment)))
    return table


def satisfying_assignments(expression: Expression | str) -> list[dict[str, bool]]:
    """Enumerate all satisfying assignments of a (small) expression."""
    if isinstance(expression, str):
        expression = parse_expression(expression)
    order = expression.variables()
    results: list[dict[str, bool]] = []
    for index in range(1 << len(order)):
        assignment = {
            name: bool((index >> (len(order) - 1 - position)) & 1)
            for position, name in enumerate(order)
        }
        if expression.evaluate(assignment):
            results.append(assignment)
    return results
