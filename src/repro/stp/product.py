"""The semi-tensor product of matrices (Definition 1 of the paper).

The semi-tensor product (STP) generalises the ordinary matrix product to
matrices of arbitrary, dimension-mismatched shapes:

    X (m x n)  <|  Y (p x q)   =   (X kron I_{t/n}) . (Y kron I_{t/p})

where ``t = lcm(n, p)`` and ``kron`` is the Kronecker product.  When
``n == p`` the STP coincides with the ordinary matrix product; when
``n = k * p`` the left factor "absorbs" the right one block-wise.  The STP
is associative, which is what allows a chain of structural matrices and
logic vectors to be evaluated in any order.
"""

from __future__ import annotations

from math import lcm
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "semi_tensor_product",
    "stp",
    "stp_chain",
    "kron_chain",
    "left_semi_tensor_power",
]


def _as_matrix(value: np.ndarray | Sequence) -> np.ndarray:
    """Coerce ``value`` to a 2-D numpy array (column vector for 1-D input)."""
    array = np.asarray(value)
    if array.ndim == 0:
        return array.reshape(1, 1)
    if array.ndim == 1:
        return array.reshape(-1, 1)
    if array.ndim != 2:
        raise ValueError(f"semi-tensor product operands must be at most 2-D, got {array.ndim}-D")
    return array


def semi_tensor_product(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Compute the (left) semi-tensor product ``x <| y``.

    Both operands are coerced to 2-D arrays; 1-D inputs are treated as
    column vectors, scalars as 1x1 matrices.

    >>> import numpy as np
    >>> from repro.stp.matrices import M_AND, TRUE_VECTOR, FALSE_VECTOR
    >>> semi_tensor_product(semi_tensor_product(M_AND, TRUE_VECTOR), FALSE_VECTOR).ravel().tolist()
    [0, 1]
    """
    a = _as_matrix(x)
    b = _as_matrix(y)
    n = a.shape[1]
    p = b.shape[0]
    if n == p:
        return a @ b
    t = lcm(n, p)
    left = np.kron(a, np.eye(t // n, dtype=a.dtype))
    right = np.kron(b, np.eye(t // p, dtype=b.dtype))
    return left @ right


#: Short alias used pervasively in the code base, mirroring the paper's habit
#: of dropping the product symbol.
stp = semi_tensor_product


def stp_chain(factors: Iterable[np.ndarray]) -> np.ndarray:
    """Left-associated STP of a sequence of factors.

    ``stp_chain([A, B, C])`` computes ``(A <| B) <| C``.  The STP is
    associative, so the association order only affects performance, not the
    result.  Raises :class:`ValueError` on an empty sequence.
    """
    iterator = iter(factors)
    try:
        result = _as_matrix(next(iterator))
    except StopIteration:
        raise ValueError("stp_chain requires at least one factor") from None
    for factor in iterator:
        result = semi_tensor_product(result, factor)
    return result


def kron_chain(factors: Iterable[np.ndarray]) -> np.ndarray:
    """Kronecker product of a sequence of factors, left-associated."""
    iterator = iter(factors)
    try:
        result = np.asarray(next(iterator))
    except StopIteration:
        raise ValueError("kron_chain requires at least one factor") from None
    for factor in iterator:
        result = np.kron(result, np.asarray(factor))
    return result


def left_semi_tensor_power(x: np.ndarray, exponent: int) -> np.ndarray:
    """Repeated STP of ``x`` with itself, ``x <| x <| ... <| x``.

    ``exponent`` must be a positive integer.  For a logic vector ``x`` this
    produces the one-hot Kronecker power used by exhaustive simulation.
    """
    if exponent < 1:
        raise ValueError("exponent must be >= 1")
    result = _as_matrix(x)
    for _ in range(exponent - 1):
        result = semi_tensor_product(result, x)
    return result
