"""Canonical forms of STP logic expressions (Property 3 of the paper).

Any Boolean expression ``Phi(x1, ..., xn)`` can be written as

    Phi(x1, ..., xn) = M_Phi <| x1 <| x2 <| ... <| xn

where ``M_Phi`` is a 2 x 2^n logic matrix called the *canonical form* (or
structure matrix) of ``Phi`` and ``<|`` is the semi-tensor product.  This
module provides:

* :class:`STPForm` -- a matrix together with an ordered variable list, the
  intermediate representation used while normalising expressions;
* algebraic construction of the canonical form from an expression tree,
  using the swap matrix ``W_[2,2]`` to reorder variables and the
  power-reducing matrix ``M_r`` to merge repeated variables (this is the
  textbook STP normalisation procedure, not a truth-table enumeration);
* an enumeration-based construction used as an independent cross-check;
* evaluation (simulation) of a canonical form on a pattern, which is the
  primitive the paper's simulator is built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .matrices import (
    TRUE_VECTOR,
    FALSE_VECTOR,
    bool_to_vector,
    identity,
    is_logic_matrix,
    power_reducing_matrix,
    structural_matrix_from_truth_table,
    swap_matrix,
    truth_table_from_structural_matrix,
    vector_to_bool,
)
from .product import semi_tensor_product, stp_chain

__all__ = [
    "STPForm",
    "variable_form",
    "constant_form",
    "apply_unary",
    "apply_binary",
    "apply_operator",
    "normalize",
    "canonical_form_from_truth_table",
    "truth_table_of_form",
    "evaluate_form",
    "evaluate_form_batch",
]

_INT = np.int64
_SWAP22 = swap_matrix(2, 2)
_POWER_REDUCE = power_reducing_matrix()


@dataclass(frozen=True)
class STPForm:
    """An STP expression ``matrix <| x_{variables[0]} <| x_{variables[1]} ...``.

    ``matrix`` has shape ``(2, 2**len(variables))``.  The variable list may
    contain repetitions while an expression is being assembled; a
    *canonical* form (produced by :func:`normalize`) has each variable
    exactly once, in the requested order.
    """

    matrix: np.ndarray
    variables: tuple[str, ...]

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=_INT)
        expected_columns = 1 << len(self.variables)
        if matrix.shape != (2, expected_columns):
            raise ValueError(
                f"matrix shape {matrix.shape} inconsistent with {len(self.variables)} variables "
                f"(expected (2, {expected_columns}))"
            )
        object.__setattr__(self, "matrix", matrix)
        object.__setattr__(self, "variables", tuple(self.variables))

    @property
    def arity(self) -> int:
        """Number of variable slots in the form (including repetitions)."""
        return len(self.variables)

    def is_canonical(self) -> bool:
        """True if the variable list has no repetitions and the matrix is a logic matrix."""
        return len(set(self.variables)) == len(self.variables) and is_logic_matrix(self.matrix)

    def truth_table(self) -> list[int]:
        """Truth table of the form, indexed by increasing input integers.

        The canonical-form matrix lists outputs for *decreasing* input
        integers (column 0 is the all-True assignment); this accessor
        reverses it so that index ``i`` gives the output when the variables,
        read ``variables[0]`` as the most significant bit, encode ``i``.
        """
        return truth_table_of_form(self)


def variable_form(name: str) -> STPForm:
    """The STP form of a bare variable: ``I_2 <| x``."""
    return STPForm(identity(2), (name,))


def constant_form(value: bool) -> STPForm:
    """The STP form of a Boolean constant (no variables)."""
    vector = TRUE_VECTOR if value else FALSE_VECTOR
    return STPForm(vector.copy(), ())


def apply_unary(operator_matrix: np.ndarray, operand: STPForm) -> STPForm:
    """Apply a unary structural matrix (2x2) to an STP form."""
    matrix = np.asarray(operator_matrix)
    if matrix.shape != (2, 2):
        raise ValueError(f"unary structural matrix must be 2x2, got {matrix.shape}")
    return STPForm(semi_tensor_product(matrix, operand.matrix), operand.variables)


def apply_binary(operator_matrix: np.ndarray, left: STPForm, right: STPForm) -> STPForm:
    """Apply a binary structural matrix (2x4) to two STP forms.

    Uses the STP swap property to move the right operand's matrix across
    the left operand's variable chain:

        M_sigma (M1 V1) (M2 V2) = M_sigma M1 (I_{2^k1} kron M2) V1 V2
    """
    matrix = np.asarray(operator_matrix)
    if matrix.shape != (2, 4):
        raise ValueError(f"binary structural matrix must be 2x4, got {matrix.shape}")
    k1 = left.arity
    lifted_right = np.kron(identity(1 << k1), right.matrix) if k1 else right.matrix
    combined = stp_chain([matrix, left.matrix, lifted_right])
    return STPForm(combined, left.variables + right.variables)


def apply_operator(operator_matrix: np.ndarray, operands: Sequence[STPForm]) -> STPForm:
    """Apply a k-ary structural matrix (2 x 2^k) to ``k`` STP forms.

    ``operands[0]`` is the *first* STP factor, i.e. the operand whose value
    selects the most significant position of the structural-matrix column
    index (column 0 is the all-True assignment).  The construction
    generalises :func:`apply_binary`: each operand matrix is lifted past the
    variables of the operands before it with a Kronecker identity,

        M (M1 V1) (M2 V2) ... = M M1 (I_{2^k1} kron M2) (I_{2^{k1+k2}} kron M3) ... V1 V2 ...

    which follows from the STP swap property (Property 1 of the paper).
    """
    matrix = np.asarray(operator_matrix)
    arity = len(operands)
    if matrix.shape != (2, 1 << arity):
        raise ValueError(f"structural matrix shape {matrix.shape} does not match {arity} operands")
    factors: list[np.ndarray] = [matrix]
    variables: tuple[str, ...] = ()
    accumulated = 0
    for operand in operands:
        lifted = np.kron(identity(1 << accumulated), operand.matrix) if accumulated else operand.matrix
        factors.append(lifted)
        variables = variables + operand.variables
        accumulated += operand.arity
    return STPForm(stp_chain(factors), variables)


def _swap_adjacent(form: STPForm, position: int) -> STPForm:
    """Swap the variables at ``position`` and ``position + 1``.

    Relies on ``x kron y = W_[2,2] (y kron x)``: the matrix absorbs the swap
    matrix on the right, and the variable list is permuted.
    """
    k = form.arity
    if not 0 <= position < k - 1:
        raise IndexError(f"cannot swap positions {position},{position + 1} in a {k}-variable form")
    left_pad = identity(1 << position)
    right_pad = identity(1 << (k - position - 2))
    swapper = np.kron(np.kron(left_pad, _SWAP22), right_pad)
    new_matrix = form.matrix @ swapper
    variables = list(form.variables)
    variables[position], variables[position + 1] = variables[position + 1], variables[position]
    return STPForm(new_matrix, tuple(variables))


def _merge_adjacent_duplicate(form: STPForm, position: int) -> STPForm:
    """Merge equal variables at ``position`` and ``position + 1``.

    Relies on ``x kron x = M_r x`` (power-reducing matrix); the matrix
    absorbs ``M_r`` on the right and one variable slot disappears.
    """
    k = form.arity
    variables = list(form.variables)
    if variables[position] != variables[position + 1]:
        raise ValueError(
            f"variables at positions {position},{position + 1} differ: "
            f"{variables[position]!r} vs {variables[position + 1]!r}"
        )
    left_pad = identity(1 << position)
    right_pad = identity(1 << (k - position - 2))
    reducer = np.kron(np.kron(left_pad, _POWER_REDUCE), right_pad)
    new_matrix = form.matrix @ reducer
    del variables[position + 1]
    return STPForm(new_matrix, tuple(variables))


def _append_missing_variable(form: STPForm, name: str) -> STPForm:
    """Append a variable the expression does not depend on.

    Since the result must not depend on the new variable, the matrix is
    extended with ``M' = M kron [1, 1]`` which satisfies
    ``M'(V kron x) = M V`` for every logic vector ``x``.
    """
    new_matrix = np.kron(form.matrix, np.array([[1, 1]], dtype=_INT))
    return STPForm(new_matrix, form.variables + (name,))


def normalize(form: STPForm, variable_order: Sequence[str] | None = None) -> STPForm:
    """Normalise an STP form into the canonical form over ``variable_order``.

    The algebraic procedure repeatedly applies adjacent swaps (via the swap
    matrix) and merges of repeated variables (via the power-reducing
    matrix) until the variable list equals ``variable_order`` with each
    variable occurring exactly once.  Variables in ``variable_order`` that
    the expression does not mention are appended as don't-care slots.

    If ``variable_order`` is omitted, the distinct variables of ``form`` in
    sorted order are used.
    """
    if variable_order is None:
        variable_order = sorted(set(form.variables))
    order = list(variable_order)
    if len(set(order)) != len(order):
        raise ValueError(f"variable_order contains duplicates: {order}")
    missing_in_order = set(form.variables) - set(order)
    if missing_in_order:
        raise ValueError(f"variable_order is missing expression variables: {sorted(missing_in_order)}")

    current = form
    for name in order:
        if name not in current.variables:
            current = _append_missing_variable(current, name)

    done = 0
    for name in order:
        # Bring every occurrence of ``name`` to position ``done`` and merge.
        first = True
        while True:
            variables = current.variables
            try:
                j = variables.index(name, done if first else done + 1)
            except ValueError:
                break
            target = done if first else done + 1
            while j > target:
                current = _swap_adjacent(current, j - 1)
                j -= 1
            if not first:
                current = _merge_adjacent_duplicate(current, done)
            first = False
        done += 1

    if list(current.variables) != order:
        raise AssertionError(f"normalisation failed: {current.variables} != {order}")
    return current


def canonical_form_from_truth_table(truth_bits: Sequence[int], variables: Sequence[str]) -> STPForm:
    """Build a canonical form directly from a truth table.

    ``truth_bits[i]`` is the output when the variables, with
    ``variables[0]`` as the most significant bit, encode the integer ``i``.
    """
    n = len(variables)
    if len(truth_bits) != 1 << n:
        raise ValueError(f"truth table length {len(truth_bits)} does not match {n} variables")
    # Structural matrices list columns for decreasing input integers.
    reversed_bits = list(truth_bits)[::-1]
    return STPForm(structural_matrix_from_truth_table(reversed_bits), tuple(variables))


def truth_table_of_form(form: STPForm) -> list[int]:
    """Truth table (increasing input integer order) of a canonical form."""
    if not form.is_canonical():
        raise ValueError("truth_table_of_form requires a canonical (repetition-free) form")
    return truth_table_from_structural_matrix(form.matrix)[::-1]


def evaluate_form(form: STPForm, assignment: Mapping[str, bool | int]) -> bool:
    """Simulate one pattern through an STP form by matrix multiplication.

    This is the STP simulation primitive: the variable vectors are
    substituted in order and the chain is contracted by semi-tensor
    products, yielding a single logic vector.
    """
    factors: list[np.ndarray] = [form.matrix]
    for name in form.variables:
        if name not in assignment:
            raise KeyError(f"assignment missing variable {name!r}")
        factors.append(bool_to_vector(bool(assignment[name])))
    if len(factors) == 1:
        return vector_to_bool(form.matrix)
    return vector_to_bool(stp_chain(factors))


def evaluate_form_batch(form: STPForm, assignments: Sequence[Mapping[str, bool | int]]) -> list[bool]:
    """Simulate a batch of patterns; returns one Boolean per assignment."""
    return [evaluate_form(form, assignment) for assignment in assignments]
