"""Control-logic circuit generators (the EPFL "random/control" family).

These are genuine, hand-written control blocks -- arbiters, ALU decoders,
CRC and parity units, Gray-code successor logic, a small memory-controller
style state update -- used both on their own and as building blocks of the
synthetic EPFL-profile benchmarks in :mod:`repro.circuits.epfl`.
"""

from __future__ import annotations

from ..networks.aig import Aig, LIT_FALSE, LIT_TRUE
from .arithmetic import add_words, equal_words, mux_words

__all__ = [
    "round_robin_arbiter",
    "simple_controller",
    "parity_checker",
    "crc_unit",
    "gray_counter_next",
    "alu_decoder",
]


def round_robin_arbiter(num_clients: int = 8, name: str = "arbiter") -> Aig:
    """Round-robin arbiter: grants one of ``num_clients`` requests.

    Inputs are the request lines plus a binary pointer giving the highest
    priority client; outputs are the one-hot grant lines and a ``busy``
    flag.  This is the combinational core of the EPFL ``arbiter`` profile.
    """
    aig = Aig(name)
    requests = [aig.add_pi(f"req{i}") for i in range(num_clients)]
    pointer_width = max(1, (num_clients - 1).bit_length())
    pointer = [aig.add_pi(f"ptr{i}") for i in range(pointer_width)]

    grants = [LIT_FALSE] * num_clients
    taken = LIT_FALSE
    # Rotate priority: client (pointer + offset) mod num_clients wins first.
    for offset in range(num_clients):
        for client in range(num_clients):
            start_value = (client - offset) % num_clients
            start_bits = [(LIT_TRUE if (start_value >> i) & 1 else LIT_FALSE) for i in range(pointer_width)]
            is_start = equal_words(aig, pointer, start_bits)
            eligible = aig.add_and(is_start, aig.add_and(requests[client], Aig.negate(taken)))
            grants[client] = aig.add_or(grants[client], eligible)
        taken = aig.add_or_multi(grants)
    for client, grant in enumerate(grants):
        aig.add_po(grant, f"gnt{client}")
    aig.add_po(taken, "busy")
    return aig


def simple_controller(num_states: int = 8, num_inputs: int = 4, name: str = "ctrl") -> Aig:
    """Next-state and output logic of a small Moore controller.

    The state is one-hot encoded; each state advances to the next state
    when its trigger input is high and falls back to state 0 otherwise --
    the shape of the tiny EPFL ``ctrl`` benchmark.
    """
    aig = Aig(name)
    state = [aig.add_pi(f"s{i}") for i in range(num_states)]
    triggers = [aig.add_pi(f"t{i}") for i in range(num_inputs)]

    next_state = [LIT_FALSE] * num_states
    for index in range(num_states):
        trigger = triggers[index % num_inputs]
        advance = aig.add_and(state[index], trigger)
        hold = aig.add_and(state[index], Aig.negate(trigger))
        next_state[(index + 1) % num_states] = aig.add_or(next_state[(index + 1) % num_states], advance)
        next_state[0] = aig.add_or(next_state[0], hold)
    for index, bit in enumerate(next_state):
        aig.add_po(bit, f"ns{index}")
    # Moore outputs: even states drive the done flag, odd states the busy flag.
    done = aig.add_or_multi([state[i] for i in range(0, num_states, 2)])
    busy = aig.add_or_multi([state[i] for i in range(1, num_states, 2)])
    aig.add_po(done, "done")
    aig.add_po(busy, "busy")
    return aig


def parity_checker(width: int = 16, name: str = "parity") -> Aig:
    """Even/odd parity over a data word."""
    aig = Aig(name)
    data = [aig.add_pi(f"d{i}") for i in range(width)]
    parity = aig.add_xor_multi(data)
    aig.add_po(parity, "odd")
    aig.add_po(Aig.negate(parity), "even")
    return aig


def crc_unit(width: int = 16, polynomial: int = 0x1021, crc_width: int = 16, name: str = "crc") -> Aig:
    """Bit-serial CRC update unrolled over one data word."""
    aig = Aig(name)
    data = [aig.add_pi(f"d{i}") for i in range(width)]
    crc = [aig.add_pi(f"c{i}") for i in range(crc_width)]
    state = list(crc)
    for bit in reversed(data):
        feedback = aig.add_xor(state[-1], bit)
        shifted = [LIT_FALSE] + state[:-1]
        state = [
            aig.add_xor(shifted[i], feedback) if (polynomial >> i) & 1 else shifted[i]
            for i in range(crc_width)
        ]
    for index, bit in enumerate(state):
        aig.add_po(bit, f"crc{index}")
    return aig


def gray_counter_next(width: int = 8, name: str = "gray") -> Aig:
    """Next value of a Gray-code counter (binary convert, increment, convert back)."""
    aig = Aig(name)
    gray = [aig.add_pi(f"g{i}") for i in range(width)]
    # Gray to binary: b[i] = xor of gray[i..width-1].
    binary = [LIT_FALSE] * width
    running = LIT_FALSE
    for index in reversed(range(width)):
        running = aig.add_xor(running, gray[index])
        binary[index] = running
    one = [LIT_TRUE] + [LIT_FALSE] * (width - 1)
    incremented, _carry = add_words(aig, binary, one)
    # Binary to Gray: g[i] = b[i] xor b[i+1].
    next_gray = [
        aig.add_xor(incremented[i], incremented[i + 1]) if i + 1 < width else incremented[i]
        for i in range(width)
    ]
    for index, bit in enumerate(next_gray):
        aig.add_po(bit, f"ng{index}")
    return aig


def alu_decoder(opcode_width: int = 4, width: int = 8, name: str = "alu") -> Aig:
    """A small ALU: the opcode selects among add, and, or, xor results.

    Used as the datapath-plus-decoder mix that the ``cavlc`` / ``i2c``
    profiles exhibit (datapath slices steered by control decoding).
    """
    aig = Aig(name)
    opcode = [aig.add_pi(f"op{i}") for i in range(opcode_width)]
    a = [aig.add_pi(f"a{i}") for i in range(width)]
    b = [aig.add_pi(f"b{i}") for i in range(width)]

    sum_bits, carry = add_words(aig, a, b)
    and_bits = [aig.add_and(x, y) for x, y in zip(a, b)]
    or_bits = [aig.add_or(x, y) for x, y in zip(a, b)]
    xor_bits = [aig.add_xor(x, y) for x, y in zip(a, b)]

    select_add = aig.add_and(Aig.negate(opcode[0]), Aig.negate(opcode[1]))
    select_and = aig.add_and(opcode[0], Aig.negate(opcode[1]))
    select_or = aig.add_and(Aig.negate(opcode[0]), opcode[1])

    result = mux_words(aig, select_add, sum_bits, xor_bits)
    result = mux_words(aig, select_and, and_bits, result)
    result = mux_words(aig, select_or, or_bits, result)
    # Remaining opcode bits gate a zero flag and the carry output.
    zero = Aig.negate(aig.add_or_multi(result))
    for index, bit in enumerate(result):
        aig.add_po(bit, f"r{index}")
    aig.add_po(aig.add_and(carry, opcode[-1] if opcode_width > 2 else LIT_TRUE), "carry")
    aig.add_po(zero, "zero")
    return aig
