"""The EPFL benchmark suite, reconstructed at reduced widths.

Table I of the paper simulates the twenty EPFL combinational benchmarks.
The suite itself is distributed as files we do not ship; this module
reconstructs every profile from scratch:

* the ten arithmetic benchmarks are genuine gate-level constructions
  (adder, barrel shifter, divider, hypotenuse, log2, max, multiplier,
  sine, square root, square) at widths reduced so that a pure-Python
  simulation of the whole suite finishes in seconds;
* the ten random/control benchmarks are either genuine control blocks
  (arbiter, ctrl, dec, int2float, priority, voter) or seeded structured
  random logic with the published size profile (cavlc, i2c, mem_ctrl,
  router).

Sizes are therefore smaller than the originals; the Table I comparison is
between two simulators on *identical* networks, so the speedup ratios --
the quantity the paper reports -- are preserved.  See DESIGN.md, section
"Substitutions".
"""

from __future__ import annotations

from typing import Callable

from ..networks.aig import Aig
from . import arithmetic, control, random_logic

__all__ = ["EPFL_BENCHMARKS", "epfl_benchmark", "epfl_suite"]


def _adder() -> Aig:
    return arithmetic.ripple_carry_adder(width=32, name="adder")


def _bar() -> Aig:
    return arithmetic.barrel_shifter(width=32, name="bar")


def _div() -> Aig:
    return arithmetic.restoring_divider(width=10, name="div")


def _hyp() -> Aig:
    return arithmetic.hypotenuse_unit(width=6, name="hyp")


def _log2() -> Aig:
    return arithmetic.log2_unit(width=32, fraction=6, name="log2")


def _max() -> Aig:
    return arithmetic.max_unit(width=24, operands=4, name="max")


def _multiplier() -> Aig:
    return arithmetic.array_multiplier(width=10, name="multiplier")


def _sin() -> Aig:
    return arithmetic.sine_unit(width=10, name="sin")


def _sqrt() -> Aig:
    return arithmetic.integer_square_root(width=12, name="sqrt")


def _square() -> Aig:
    return arithmetic.square(width=10, name="square")


def _arbiter() -> Aig:
    return control.round_robin_arbiter(num_clients=12, name="arbiter")


def _cavlc() -> Aig:
    return random_logic.random_aig(num_pis=10, num_gates=350, num_pos=11, seed=101, name="cavlc")


def _ctrl() -> Aig:
    return control.simple_controller(num_states=8, num_inputs=7, name="ctrl")


def _dec() -> Aig:
    return arithmetic.decoder(address_width=8, name="dec")


def _i2c() -> Aig:
    return random_logic.random_aig(num_pis=18, num_gates=650, num_pos=15, seed=102, name="i2c")


def _int2float() -> Aig:
    return arithmetic.int_to_float(width=16, mantissa=7, name="int2float")


def _mem_ctrl() -> Aig:
    return random_logic.layered_random_aig(
        num_pis=48, num_layers=12, layer_width=96, num_pos=32, seed=103, name="mem_ctrl"
    )


def _priority() -> Aig:
    return arithmetic.priority_encoder(width=32, name="priority")


def _router() -> Aig:
    return random_logic.random_aig(num_pis=20, num_gates=260, num_pos=10, seed=104, name="router")


def _voter() -> Aig:
    return arithmetic.majority_voter(num_inputs=31, name="voter")


#: Factories for all twenty EPFL benchmark profiles, in Table I order.
EPFL_BENCHMARKS: dict[str, Callable[[], Aig]] = {
    "adder": _adder,
    "bar": _bar,
    "div": _div,
    "hyp": _hyp,
    "log2": _log2,
    "max": _max,
    "multiplier": _multiplier,
    "sin": _sin,
    "sqrt": _sqrt,
    "square": _square,
    "arbiter": _arbiter,
    "cavlc": _cavlc,
    "ctrl": _ctrl,
    "dec": _dec,
    "i2c": _i2c,
    "int2float": _int2float,
    "mem_ctrl": _mem_ctrl,
    "priority": _priority,
    "router": _router,
    "voter": _voter,
}


def epfl_benchmark(name: str) -> Aig:
    """Construct one EPFL-profile benchmark by name."""
    if name not in EPFL_BENCHMARKS:
        raise KeyError(f"unknown EPFL benchmark {name!r}; known: {sorted(EPFL_BENCHMARKS)}")
    return EPFL_BENCHMARKS[name]()


def epfl_suite(names: list[str] | None = None) -> dict[str, Aig]:
    """Construct several (by default all) EPFL-profile benchmarks."""
    selected = names if names is not None else list(EPFL_BENCHMARKS)
    return {name: epfl_benchmark(name) for name in selected}
