"""Seeded structured-random AIG generators.

Some EPFL control benchmarks (``cavlc``, ``i2c``, ``router``, ``mem_ctrl``)
and the HWMCC'15 model-checking frames are large irregular control
networks; this module generates seeded random AIGs with a controllable
size, depth and fan-in profile that stand in for them.  The generators are
deterministic for a given seed, so every benchmark table row is
reproducible.
"""

from __future__ import annotations

import random

from ..networks.aig import Aig

__all__ = ["random_aig", "layered_random_aig"]


def random_aig(
    num_pis: int = 16,
    num_gates: int = 200,
    num_pos: int = 8,
    seed: int = 1,
    xor_fraction: float = 0.2,
    name: str = "random",
) -> Aig:
    """A random AIG grown gate by gate.

    Each new gate combines two previously created literals (PIs or gates),
    drawn with a bias towards recent nodes so the network has realistic
    depth; a fraction of the gates are XOR pairs (two-level AND trees),
    which is what makes the profile resemble control logic rather than a
    monotone AND cascade.
    """
    if num_pis < 2:
        raise ValueError("random_aig needs at least two primary inputs")
    rng = random.Random(seed)
    aig = Aig(name)
    literals = [aig.add_pi(f"x{i}") for i in range(num_pis)]

    def pick_literal() -> int:
        # Bias towards the most recent third of the nodes for depth.
        if literals and rng.random() < 0.5:
            start = max(0, len(literals) - max(4, len(literals) // 3))
            literal = literals[rng.randrange(start, len(literals))]
        else:
            literal = literals[rng.randrange(len(literals))]
        return Aig.negate(literal) if rng.random() < 0.5 else literal

    while aig.num_ands < num_gates:
        a = pick_literal()
        b = pick_literal()
        if rng.random() < xor_fraction:
            literal = aig.add_xor(a, b)
        else:
            literal = aig.add_and(a, b)
        if Aig.node_of(literal) != 0:
            literals.append(literal)

    pos = rng.sample(literals[num_pis:], min(num_pos, max(1, len(literals) - num_pis)))
    for index, literal in enumerate(pos):
        aig.add_po(literal if rng.random() < 0.5 else Aig.negate(literal), f"y{index}")
    return aig


def layered_random_aig(
    num_pis: int = 16,
    num_layers: int = 8,
    layer_width: int = 32,
    num_pos: int = 8,
    seed: int = 1,
    name: str = "layered",
) -> Aig:
    """A random AIG organised in layers (uniform depth, datapath-like shape).

    Every layer draws its fanins from the two preceding layers only, which
    produces the long, narrow structure of pipelined datapaths and
    model-checking unrollings.
    """
    rng = random.Random(seed)
    aig = Aig(name)
    previous = [aig.add_pi(f"x{i}") for i in range(num_pis)]
    before_previous = list(previous)

    for _layer in range(num_layers):
        pool = previous + before_previous
        current = []
        for _ in range(layer_width):
            a = pool[rng.randrange(len(pool))]
            b = pool[rng.randrange(len(pool))]
            if rng.random() < 0.5:
                a = Aig.negate(a)
            if rng.random() < 0.5:
                b = Aig.negate(b)
            if rng.random() < 0.25:
                literal = aig.add_xor(a, b)
            else:
                literal = aig.add_and(a, b)
            current.append(literal)
        before_previous = previous
        previous = current

    outputs = previous if len(previous) >= num_pos else previous + before_previous
    for index in range(num_pos):
        literal = outputs[index % len(outputs)]
        aig.add_po(literal if rng.random() < 0.5 else Aig.negate(literal), f"y{index}")
    return aig
