"""Benchmark circuit generators.

The paper evaluates on the EPFL combinational suite (Table I) and on
HWMCC'15 / IWLS'05 designs (Table II).  Those suites are distributed as
files we do not ship; this package instead *constructs* circuits of the
same families from scratch: genuine gate-level arithmetic (adders,
shifters, multipliers, dividers, square roots, ...), control blocks
(arbiters, decoders, priority logic, ...), seeded structured random logic
for the remaining profiles, and a redundancy injector that turns any base
circuit into a SAT-sweeping workload with hidden equivalences, the way the
sequential HWMCC designs behave after unrolling.  DESIGN.md documents the
substitution and why the paper's comparisons survive it.
"""

from .arithmetic import (
    ripple_carry_adder,
    carry_select_adder,
    subtractor,
    comparator,
    barrel_shifter,
    array_multiplier,
    square as square_circuit,
    restoring_divider,
    integer_square_root,
    max_unit,
    majority_voter,
    decoder,
    priority_encoder,
    int_to_float,
    log2_unit,
    sine_unit,
    hypotenuse_unit,
)
from .control import (
    round_robin_arbiter,
    simple_controller,
    parity_checker,
    crc_unit,
    gray_counter_next,
    alu_decoder,
)
from .random_logic import random_aig, layered_random_aig
from .epfl import EPFL_BENCHMARKS, epfl_benchmark, epfl_suite
from .sweep_workloads import (
    SWEEP_WORKLOADS,
    inject_redundancy,
    sweep_workload,
    sweep_workload_suite,
)

__all__ = [
    "ripple_carry_adder",
    "carry_select_adder",
    "subtractor",
    "comparator",
    "barrel_shifter",
    "array_multiplier",
    "square_circuit",
    "restoring_divider",
    "integer_square_root",
    "max_unit",
    "majority_voter",
    "decoder",
    "priority_encoder",
    "int_to_float",
    "log2_unit",
    "sine_unit",
    "hypotenuse_unit",
    "round_robin_arbiter",
    "simple_controller",
    "parity_checker",
    "crc_unit",
    "gray_counter_next",
    "alu_decoder",
    "random_aig",
    "layered_random_aig",
    "EPFL_BENCHMARKS",
    "epfl_benchmark",
    "epfl_suite",
    "SWEEP_WORKLOADS",
    "inject_redundancy",
    "sweep_workload",
    "sweep_workload_suite",
]
