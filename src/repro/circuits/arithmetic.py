"""Gate-level arithmetic circuit generators (the EPFL arithmetic family).

Every generator returns an :class:`~repro.networks.aig.Aig` built bottom-up
from AND gates and complemented edges -- ripple/carry-select adders, barrel
shifters, array multipliers, restoring dividers and square roots, word
comparators, majority voters, decoders, priority encoders and the small
floating-point / elementary-function approximations that mirror the EPFL
``int2float``, ``log2``, ``sin`` and ``hyp`` benchmarks at reduced widths.

The word-level helpers (:func:`add_words`, :func:`shift_left_words`, ...)
operate on lists of AIG literals, least-significant bit first.
"""

from __future__ import annotations

from typing import Sequence

from ..networks.aig import Aig, LIT_FALSE, LIT_TRUE

__all__ = [
    "ripple_carry_adder",
    "carry_select_adder",
    "subtractor",
    "comparator",
    "barrel_shifter",
    "array_multiplier",
    "square",
    "restoring_divider",
    "integer_square_root",
    "max_unit",
    "majority_voter",
    "decoder",
    "priority_encoder",
    "int_to_float",
    "log2_unit",
    "sine_unit",
    "hypotenuse_unit",
    "add_words",
    "sub_words",
    "mul_words",
    "less_than",
    "equal_words",
    "mux_words",
    "shift_left_words",
    "shift_right_words",
]


# ---------------------------------------------------------------------------
# Word-level helpers (lists of literals, LSB first)
# ---------------------------------------------------------------------------


def _full_adder(aig: Aig, a: int, b: int, carry: int) -> tuple[int, int]:
    """One full adder; returns ``(sum, carry_out)``."""
    total = aig.add_xor(aig.add_xor(a, b), carry)
    carry_out = aig.add_maj(a, b, carry)
    return total, carry_out


def add_words(aig: Aig, a: Sequence[int], b: Sequence[int], carry_in: int = LIT_FALSE) -> tuple[list[int], int]:
    """Ripple-carry addition of two equal-width words; returns ``(sum, carry_out)``."""
    if len(a) != len(b):
        raise ValueError("add_words requires equal widths")
    carry = carry_in
    total = []
    for bit_a, bit_b in zip(a, b):
        sum_bit, carry = _full_adder(aig, bit_a, bit_b, carry)
        total.append(sum_bit)
    return total, carry


def sub_words(aig: Aig, a: Sequence[int], b: Sequence[int]) -> tuple[list[int], int]:
    """Two's-complement subtraction ``a - b``; returns ``(difference, borrow_free)``.

    The second element is the carry-out of ``a + ~b + 1``; it is 1 exactly
    when ``a >= b`` (no borrow).
    """
    inverted = [Aig.negate(bit) for bit in b]
    return add_words(aig, list(a), inverted, LIT_TRUE)


def mul_words(aig: Aig, a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Array multiplication; returns a ``len(a) + len(b)`` bit product."""
    width_a, width_b = len(a), len(b)
    accumulator = [LIT_FALSE] * (width_a + width_b)
    for j, bit_b in enumerate(b):
        partial = [aig.add_and(bit_a, bit_b) for bit_a in a]
        padded = [LIT_FALSE] * j + partial + [LIT_FALSE] * (width_b - j)
        accumulator, _carry = add_words(aig, accumulator, padded[: width_a + width_b])
    return accumulator


def less_than(aig: Aig, a: Sequence[int], b: Sequence[int]) -> int:
    """Unsigned comparison ``a < b`` (single literal)."""
    _diff, no_borrow = sub_words(aig, a, b)
    return Aig.negate(no_borrow)


def equal_words(aig: Aig, a: Sequence[int], b: Sequence[int]) -> int:
    """Word equality (single literal)."""
    bits = [aig.add_xnor(x, y) for x, y in zip(a, b)]
    return aig.add_and_multi(bits)


def mux_words(aig: Aig, select: int, when_true: Sequence[int], when_false: Sequence[int]) -> list[int]:
    """Word-level 2:1 multiplexer."""
    return [aig.add_mux(select, t, f) for t, f in zip(when_true, when_false)]


def shift_left_words(aig: Aig, word: Sequence[int], amount: Sequence[int]) -> list[int]:
    """Logical left shift of ``word`` by the binary-encoded ``amount``."""
    current = list(word)
    for stage, select in enumerate(amount):
        shifted = [LIT_FALSE] * (1 << stage) + current[: len(current) - (1 << stage)]
        if (1 << stage) >= len(current):
            shifted = [LIT_FALSE] * len(current)
        current = mux_words(aig, select, shifted, current)
    return current


def shift_right_words(aig: Aig, word: Sequence[int], amount: Sequence[int]) -> list[int]:
    """Logical right shift of ``word`` by the binary-encoded ``amount``."""
    current = list(word)
    for stage, select in enumerate(amount):
        shifted = current[(1 << stage):] + [LIT_FALSE] * min(1 << stage, len(current))
        current = mux_words(aig, select, shifted, current)
    return current


def _input_word(aig: Aig, width: int, prefix: str) -> list[int]:
    return [aig.add_pi(f"{prefix}{i}") for i in range(width)]


def _output_word(aig: Aig, bits: Sequence[int], prefix: str) -> None:
    for index, bit in enumerate(bits):
        aig.add_po(bit, f"{prefix}{index}")


# ---------------------------------------------------------------------------
# EPFL-style arithmetic benchmarks
# ---------------------------------------------------------------------------


def ripple_carry_adder(width: int = 32, name: str = "adder") -> Aig:
    """Ripple-carry adder: two ``width``-bit inputs, ``width + 1`` bit sum."""
    aig = Aig(name)
    a = _input_word(aig, width, "a")
    b = _input_word(aig, width, "b")
    total, carry = add_words(aig, a, b)
    _output_word(aig, total + [carry], "s")
    return aig


def carry_select_adder(width: int = 16, block: int = 4, name: str = "cs_adder") -> Aig:
    """Carry-select adder (blocks computed for both carries, then selected)."""
    aig = Aig(name)
    a = _input_word(aig, width, "a")
    b = _input_word(aig, width, "b")
    total: list[int] = []
    carry = LIT_FALSE
    for start in range(0, width, block):
        chunk_a = a[start : start + block]
        chunk_b = b[start : start + block]
        sum0, carry0 = add_words(aig, chunk_a, chunk_b, LIT_FALSE)
        sum1, carry1 = add_words(aig, chunk_a, chunk_b, LIT_TRUE)
        total.extend(mux_words(aig, carry, sum1, sum0))
        carry = aig.add_mux(carry, carry1, carry0)
    _output_word(aig, total + [carry], "s")
    return aig


def subtractor(width: int = 16, name: str = "subtractor") -> Aig:
    """Two's-complement subtractor with a borrow-free flag output."""
    aig = Aig(name)
    a = _input_word(aig, width, "a")
    b = _input_word(aig, width, "b")
    difference, no_borrow = sub_words(aig, a, b)
    _output_word(aig, difference, "d")
    aig.add_po(no_borrow, "geq")
    return aig


def comparator(width: int = 16, name: str = "comparator") -> Aig:
    """Unsigned comparator producing ``lt``, ``eq`` and ``gt``."""
    aig = Aig(name)
    a = _input_word(aig, width, "a")
    b = _input_word(aig, width, "b")
    lt = less_than(aig, a, b)
    eq = equal_words(aig, a, b)
    gt = aig.add_and(Aig.negate(lt), Aig.negate(eq))
    aig.add_po(lt, "lt")
    aig.add_po(eq, "eq")
    aig.add_po(gt, "gt")
    return aig


def barrel_shifter(width: int = 32, name: str = "bar") -> Aig:
    """Logarithmic barrel shifter (left shift by a log2(width)-bit amount)."""
    aig = Aig(name)
    data = _input_word(aig, width, "d")
    amount = _input_word(aig, max(1, (width - 1).bit_length()), "sh")
    shifted = shift_left_words(aig, data, amount)
    _output_word(aig, shifted, "q")
    return aig


def array_multiplier(width: int = 8, name: str = "multiplier") -> Aig:
    """Unsigned array multiplier."""
    aig = Aig(name)
    a = _input_word(aig, width, "a")
    b = _input_word(aig, width, "b")
    product = mul_words(aig, a, b)
    _output_word(aig, product, "p")
    return aig


def square(width: int = 8, name: str = "square") -> Aig:
    """Squarer: a single input multiplied with itself."""
    aig = Aig(name)
    a = _input_word(aig, width, "a")
    product = mul_words(aig, a, a)
    _output_word(aig, product, "p")
    return aig


def restoring_divider(width: int = 8, name: str = "div") -> Aig:
    """Restoring divider: ``width``-bit dividend and divisor, quotient + remainder."""
    aig = Aig(name)
    dividend = _input_word(aig, width, "n")
    divisor = _input_word(aig, width, "d")
    remainder = [LIT_FALSE] * width
    quotient = [LIT_FALSE] * width
    for step in reversed(range(width)):
        # Shift the remainder left and bring down the next dividend bit.
        remainder = [dividend[step]] + remainder[:-1]
        difference, no_borrow = sub_words(aig, remainder, divisor)
        remainder = mux_words(aig, no_borrow, difference, remainder)
        quotient[step] = no_borrow
    _output_word(aig, quotient, "q")
    _output_word(aig, remainder, "r")
    return aig


def integer_square_root(width: int = 8, name: str = "sqrt") -> Aig:
    """Non-restoring integer square root of a ``width``-bit radicand."""
    aig = Aig(name)
    radicand = _input_word(aig, width, "x")
    half = (width + 1) // 2
    root = [LIT_FALSE] * half
    remainder = list(radicand)
    for index in reversed(range(half)):
        # Candidate root with bit ``index`` set.
        candidate = list(root)
        candidate[index] = LIT_TRUE
        # candidate^2 <= radicand ?  (computed over 2*width bits)
        squared = mul_words(aig, candidate, candidate)
        wide_radicand = list(radicand) + [LIT_FALSE] * (len(squared) - width)
        _diff, fits = sub_words(aig, wide_radicand, squared)
        root = mux_words(aig, fits, candidate, root)
    _output_word(aig, root, "root")
    # Remainder output keeps the PO profile similar to the EPFL benchmark.
    squared_root = mul_words(aig, root, root)
    wide_radicand = list(remainder) + [LIT_FALSE] * (len(squared_root) - width)
    final_remainder, _ = sub_words(aig, wide_radicand, squared_root)
    _output_word(aig, final_remainder[:width], "rem")
    return aig


def max_unit(width: int = 16, operands: int = 4, name: str = "max") -> Aig:
    """Maximum of several unsigned words (tournament of comparators)."""
    aig = Aig(name)
    words = [_input_word(aig, width, f"w{i}_") for i in range(operands)]
    current = words[0]
    for other in words[1:]:
        smaller = less_than(aig, current, other)
        current = mux_words(aig, smaller, other, current)
    _output_word(aig, current, "max")
    return aig


def majority_voter(num_inputs: int = 15, name: str = "voter") -> Aig:
    """Majority voter over an odd number of single-bit inputs (population count)."""
    if num_inputs % 2 == 0:
        raise ValueError("majority voter needs an odd number of inputs")
    aig = Aig(name)
    bits = [aig.add_pi(f"v{i}") for i in range(num_inputs)]
    # Population count by ripple accumulation.
    count_width = num_inputs.bit_length()
    count = [LIT_FALSE] * count_width
    for bit in bits:
        count, _carry = add_words(aig, count, [bit] + [LIT_FALSE] * (count_width - 1))
    threshold = num_inputs // 2 + 1
    threshold_bits = [(LIT_TRUE if (threshold >> i) & 1 else LIT_FALSE) for i in range(count_width)]
    _diff, is_majority = sub_words(aig, count, threshold_bits)
    aig.add_po(is_majority, "majority")
    return aig


def decoder(address_width: int = 6, name: str = "dec") -> Aig:
    """Full binary decoder: ``address_width`` inputs, ``2**address_width`` outputs."""
    aig = Aig(name)
    address = _input_word(aig, address_width, "a")
    for value in range(1 << address_width):
        bits = [
            address[i] if (value >> i) & 1 else Aig.negate(address[i])
            for i in range(address_width)
        ]
        aig.add_po(aig.add_and_multi(bits), f"y{value}")
    return aig


def priority_encoder(width: int = 16, name: str = "priority") -> Aig:
    """Priority encoder: index of the highest set request plus a valid flag."""
    aig = Aig(name)
    requests = [aig.add_pi(f"r{i}") for i in range(width)]
    index_width = max(1, (width - 1).bit_length())
    index = [LIT_FALSE] * index_width
    valid = LIT_FALSE
    for position, request in enumerate(requests):
        position_bits = [(LIT_TRUE if (position >> i) & 1 else LIT_FALSE) for i in range(index_width)]
        index = mux_words(aig, request, position_bits, index)
        valid = aig.add_or(valid, request)
    _output_word(aig, index, "idx")
    aig.add_po(valid, "valid")
    return aig


def int_to_float(width: int = 16, mantissa: int = 7, name: str = "int2float") -> Aig:
    """Integer to small floating-point conversion (leading-one detect + normalise)."""
    aig = Aig(name)
    value = _input_word(aig, width, "x")
    exponent_width = max(1, (width - 1).bit_length())
    # Leading-one position (priority from the top) and validity.
    exponent = [LIT_FALSE] * exponent_width
    found = LIT_FALSE
    for position in range(width):
        bit = value[position]
        position_bits = [(LIT_TRUE if (position >> i) & 1 else LIT_FALSE) for i in range(exponent_width)]
        exponent = mux_words(aig, bit, position_bits, exponent)
        found = aig.add_or(found, bit)
    # Normalised mantissa: value shifted left so the leading one drops out.
    shift_amount = [Aig.negate(bit) for bit in exponent]  # (width-1) - exponent for width = 2^k
    shifted = shift_left_words(aig, value, shift_amount)
    mantissa_bits = shifted[max(0, width - 1 - mantissa) : width - 1] if width > 1 else []
    _output_word(aig, exponent, "exp")
    _output_word(aig, mantissa_bits, "man")
    aig.add_po(found, "nonzero")
    return aig


def log2_unit(width: int = 16, fraction: int = 4, name: str = "log2") -> Aig:
    """Base-2 logarithm approximation: integer part plus a linear fraction."""
    aig = Aig(name)
    value = _input_word(aig, width, "x")
    exponent_width = max(1, (width - 1).bit_length())
    integer_part = [LIT_FALSE] * exponent_width
    for position in range(width):
        position_bits = [(LIT_TRUE if (position >> i) & 1 else LIT_FALSE) for i in range(exponent_width)]
        integer_part = mux_words(aig, value[position], position_bits, integer_part)
    # Fractional part: the bits just below the leading one (linear interpolation).
    shift_amount = [Aig.negate(bit) for bit in integer_part]
    normalised = shift_left_words(aig, value, shift_amount)
    fraction_bits = normalised[max(0, width - 1 - fraction) : width - 1]
    _output_word(aig, integer_part, "int")
    _output_word(aig, fraction_bits, "frac")
    return aig


def sine_unit(width: int = 8, name: str = "sin") -> Aig:
    """Parabolic sine approximation ``sin(x) ~ 4x(1-x)`` on a normalised input."""
    aig = Aig(name)
    x = _input_word(aig, width, "x")
    one_minus_x = [Aig.negate(bit) for bit in x]  # (2^width - 1) - x
    product = mul_words(aig, x, one_minus_x)
    # Multiply by four = shift left by two, keep the top ``width`` bits.
    scaled = ([LIT_FALSE, LIT_FALSE] + product)[len(product) - width + 2 : len(product) + 2]
    _output_word(aig, scaled, "sin")
    return aig


def hypotenuse_unit(width: int = 6, name: str = "hyp") -> Aig:
    """Hypotenuse ``sqrt(a^2 + b^2)`` built from squarers, an adder and a square root."""
    aig = Aig(name)
    a = _input_word(aig, width, "a")
    b = _input_word(aig, width, "b")
    a_squared = mul_words(aig, a, a)
    b_squared = mul_words(aig, b, b)
    total, carry = add_words(aig, a_squared, b_squared)
    radicand = total + [carry]
    # Integer square root of the (2*width + 1)-bit radicand.
    half = (len(radicand) + 1) // 2
    root = [LIT_FALSE] * half
    for index in reversed(range(half)):
        candidate = list(root)
        candidate[index] = LIT_TRUE
        squared = mul_words(aig, candidate, candidate)
        wide_radicand = list(radicand) + [LIT_FALSE] * (len(squared) - len(radicand))
        _diff, fits = sub_words(aig, wide_radicand, squared[: len(wide_radicand)])
        root = mux_words(aig, fits, candidate, root)
    _output_word(aig, root, "hyp")
    return aig
