"""SAT-sweeping workloads with injected redundancy (the Table II benchmarks).

Table II evaluates the sweepers on HWMCC'15 and IWLS'05 designs -- large
AIGs whose interesting property, from a SAT-sweeping point of view, is the
presence of *hidden* functional equivalences: structurally different cones
computing the same function, and cones that are secretly constant.  Those
files are not shipped here; instead :func:`inject_redundancy` manufactures
the same situation from any base circuit:

* a fraction of the internal nodes are duplicated through a functionally
  equal but structurally different re-implementation (Shannon expansion or
  a sum-of-minterms over a small cut), so structural hashing cannot merge
  them back;
* part of the fanout of the original node is redirected to the duplicate;
* optionally, hidden constant-false cones are built from a signal and a
  re-implementation of its complement, and OR-ed into existing edges
  (which leaves the function unchanged).

The result is a network that is functionally identical to the base circuit
but larger; a correct SAT sweeper recovers (most of) the original size,
and the comparison between the baseline and the STP sweeper on identical
inputs mirrors the paper's Table II.  Each named workload below pairs a
base circuit with an injection profile, one per Table II row.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..networks.aig import Aig, LIT_FALSE
from ..networks.mapping import aig_node_truth_table
from ..truthtable import TruthTable
from . import arithmetic, control, random_logic

__all__ = ["SWEEP_WORKLOADS", "inject_redundancy", "sweep_workload", "sweep_workload_suite"]


# ---------------------------------------------------------------------------
# Redundancy injection
# ---------------------------------------------------------------------------


def _small_cut(aig: Aig, node: int, max_leaves: int) -> list[int]:
    """A small cut below ``node``: expand fanins breadth-first up to the limit."""
    leaves = list(aig.fanin_nodes(node))
    leaves = list(dict.fromkeys(leaves))
    changed = True
    while changed and len(leaves) < max_leaves:
        changed = False
        for index, leaf in enumerate(leaves):
            if not aig.is_and(leaf):
                continue
            expansion = [f for f in aig.fanin_nodes(leaf) if f not in leaves]
            if len(leaves) - 1 + len(expansion) + sum(1 for f in aig.fanin_nodes(leaf) if f in leaves) > max_leaves:
                continue
            leaves.pop(index)
            leaves.extend(f for f in aig.fanin_nodes(leaf) if f not in leaves)
            changed = True
            break
    return leaves


def _rebuild_from_truth_table(aig: Aig, table: TruthTable, leaves: list[int], style: str) -> int:
    """Re-implement ``table`` over ``leaves`` with a different structure.

    ``style`` selects the decomposition: ``"sop"`` builds a sum of minterms,
    ``"shannon"`` a Shannon expansion on the first support variable.  Both
    produce gates that the structural hash of the original construction
    does not share, so the duplicate survives strashing.
    """
    leaf_literals = [Aig.literal(leaf) for leaf in leaves]
    if table.is_constant():
        return LIT_FALSE if table.bits == 0 else Aig.negate(LIT_FALSE)
    if style == "shannon":
        support = table.support()
        variable = support[0]
        negative = table.cofactor(variable, False)
        positive = table.cofactor(variable, True)
        negative_literal = _rebuild_from_truth_table(aig, negative, leaves, "sop")
        positive_literal = _rebuild_from_truth_table(aig, positive, leaves, "sop")
        return aig.add_mux(leaf_literals[variable], positive_literal, negative_literal)
    # Sum of minterms.
    terms = []
    for assignment in range(table.num_bits):
        if not table.value_at(assignment):
            continue
        factors = [
            leaf_literals[i] if (assignment >> i) & 1 else Aig.negate(leaf_literals[i])
            for i in range(table.num_vars)
        ]
        terms.append(aig.add_and_multi(factors))
    return aig.add_or_multi(terms)


@dataclass
class InjectionReport:
    """What the redundancy injector did to one network."""

    duplicated_nodes: int = 0
    redirected_references: int = 0
    constant_cones: int = 0
    near_miss_nodes: int = 0
    gates_before: int = 0
    gates_after: int = 0


def inject_redundancy(
    aig: Aig,
    duplication_fraction: float = 0.15,
    constant_cones: int = 2,
    near_miss_count: int = 0,
    cut_size: int = 4,
    max_support: int = 12,
    seed: int = 1,
    name: str | None = None,
) -> tuple[Aig, InjectionReport]:
    """Return a network with hidden redundancy (and optional near-miss decoys).

    ``duplication_fraction`` of the AND nodes are duplicated with a
    different structure and take over part of the original node's fanout;
    ``constant_cones`` hidden constant-false cones are OR-ed into random
    edges.  Both of these keep the function identical to the base circuit.

    ``near_miss_count`` additionally creates *near-miss* decoy outputs: a
    copy of an existing node XOR-ed with the conjunction of its (small) PI
    support.  A near miss agrees with the original node on all but one
    input assignment, so random simulation almost never separates the pair
    and the candidate equivalence survives until either an (expensive)
    satisfiable SAT call or an exhaustive window simulation disproves it --
    the exact situation the paper's STP sweeper is designed to handle.
    Near misses change the PO list (each one drives a new output), not the
    function of the existing outputs.
    """
    rng = random.Random(seed)
    work = aig.clone()
    if name is not None:
        work.name = name
    report = InjectionReport(gates_before=work.num_ands)

    gates = [node for node in work.gates() if work.is_and(node)]
    num_duplicates = int(len(gates) * duplication_fraction)
    chosen = rng.sample(gates, min(num_duplicates, len(gates))) if gates else []

    for node in chosen:
        leaves = _small_cut(work, node, cut_size)
        if not leaves or len(leaves) > cut_size:
            continue
        table = aig_node_truth_table(work, node, leaves, allow_unused_leaves=True)
        style = "shannon" if rng.random() < 0.5 else "sop"
        duplicate = _rebuild_from_truth_table(work, table, leaves, style)
        if Aig.node_of(duplicate) == node or Aig.node_of(duplicate) == 0:
            continue
        report.duplicated_nodes += 1
        # Redirect roughly half of the references of the original node.
        duplicate_cone = set(work.tfi([Aig.node_of(duplicate)]))
        for gate in list(work.gates()):
            if gate == Aig.node_of(duplicate) or gate in duplicate_cone:
                continue
            fanin_nodes = {Aig.node_of(f) for f in work.fanins(gate)}
            if node in fanin_nodes and rng.random() < 0.5:
                if work.replace_fanin(gate, node, duplicate):
                    report.redirected_references += 1
        for index, po in enumerate(work.pos):
            if Aig.node_of(po) == node and rng.random() < 0.5:
                work.set_po(index, duplicate ^ (po & 1))
                report.redirected_references += 1

    # Hidden constant-false cones OR-ed into random edges.
    for _ in range(constant_cones):
        if not gates:
            break
        node = rng.choice(gates)
        leaves = _small_cut(work, node, cut_size)
        if not leaves or len(leaves) > cut_size:
            continue
        table = aig_node_truth_table(work, node, leaves, allow_unused_leaves=True)
        if table.is_constant():
            continue
        # Build a structurally different complement and AND it with the node:
        # the result is constant false but not structurally obvious.
        complement = _rebuild_from_truth_table(work, ~table, leaves, "sop")
        hidden_zero = work.add_and(Aig.literal(node), complement)
        if hidden_zero == LIT_FALSE:
            continue
        report.constant_cones += 1
        # OR the hidden zero into one existing edge (function unchanged).
        target_gates = [g for g in work.gates() if g != Aig.node_of(hidden_zero)]
        if not target_gates:
            continue
        gate = rng.choice(target_gates)
        fanin0, _fanin1 = work.fanins(gate)
        if gate in work.tfi([Aig.node_of(hidden_zero)]):
            continue
        replacement = work.add_or(fanin0, hidden_zero)
        if Aig.node_of(replacement) != 0 and gate not in work.tfi([Aig.node_of(replacement)]):
            if work.replace_fanin(gate, Aig.node_of(fanin0), replacement ^ (fanin0 & 1)):
                report.redirected_references += 1

    # Near-miss decoys: almost-equivalent nodes exposed as extra outputs.
    if near_miss_count:
        candidates = []
        for node in work.gates():
            support = [n for n in work.tfi([node]) if work.is_pi(n)]
            # A wide-enough support keeps the probability that random
            # patterns hit the single differing assignment negligible.
            if 8 <= len(support) <= max_support:
                candidates.append((node, support))
        if len(candidates) < near_miss_count:
            for node in work.gates():
                support = [n for n in work.tfi([node]) if work.is_pi(n)]
                if 5 <= len(support) < 8:
                    candidates.append((node, support))
        rng.shuffle(candidates)
        for node, support in candidates[:near_miss_count]:
            conjunction = work.add_and_multi([Aig.literal(pi) for pi in support])
            near_miss = work.add_xor(Aig.literal(node), conjunction)
            if Aig.node_of(near_miss) in (0, node):
                continue
            work.add_po(near_miss, f"nm{report.near_miss_nodes}")
            report.near_miss_nodes += 1

    report.gates_after = work.num_ands
    return work, report


# ---------------------------------------------------------------------------
# Named workloads (one per Table II row)
# ---------------------------------------------------------------------------


def _base_6s100() -> Aig:
    return random_logic.layered_random_aig(num_pis=40, num_layers=10, layer_width=80, num_pos=30, seed=11, name="6s100")


def _base_6s20() -> Aig:
    return random_logic.layered_random_aig(num_pis=16, num_layers=30, layer_width=24, num_pos=12, seed=12, name="6s20")


def _base_6s203b41() -> Aig:
    return random_logic.layered_random_aig(num_pis=36, num_layers=8, layer_width=72, num_pos=28, seed=13, name="6s203b41")


def _base_6s281b35() -> Aig:
    return random_logic.layered_random_aig(num_pis=48, num_layers=12, layer_width=80, num_pos=36, seed=14, name="6s281b35")


def _base_6s342rb122() -> Aig:
    return random_logic.layered_random_aig(num_pis=32, num_layers=7, layer_width=64, num_pos=24, seed=15, name="6s342rb122")


def _base_6s350rb46() -> Aig:
    return random_logic.layered_random_aig(num_pis=44, num_layers=12, layer_width=88, num_pos=34, seed=16, name="6s350rb46")


def _base_6s382r() -> Aig:
    return random_logic.layered_random_aig(num_pis=36, num_layers=24, layer_width=56, num_pos=26, seed=17, name="6s382r")


def _base_6s392r() -> Aig:
    return random_logic.layered_random_aig(num_pis=36, num_layers=12, layer_width=72, num_pos=26, seed=18, name="6s392r")


def _base_beemfwt4b1() -> Aig:
    return arithmetic.ripple_carry_adder(width=24, name="beemfwt4b1")


def _base_beemfwt5b3() -> Aig:
    return arithmetic.array_multiplier(width=7, name="beemfwt5b3")


def _base_oski15a07b0s() -> Aig:
    return control.crc_unit(width=20, crc_width=16, name="oski15a07b0s")


def _base_oski2b1i() -> Aig:
    return arithmetic.restoring_divider(width=6, name="oski2b1i")


def _base_b18() -> Aig:
    return control.round_robin_arbiter(num_clients=10, name="b18")


def _base_b19() -> Aig:
    return random_logic.random_aig(num_pis=24, num_gates=900, num_pos=16, seed=19, name="b19")


def _base_leon2() -> Aig:
    return control.alu_decoder(opcode_width=4, width=12, name="leon2")


@dataclass(frozen=True)
class WorkloadSpec:
    """Base circuit plus injection profile of one Table II workload."""

    factory: Callable[[], Aig]
    duplication_fraction: float
    constant_cones: int
    near_miss_count: int
    seed: int


#: The fifteen Table II workloads (HWMCC'15 / IWLS'05 profiles).
SWEEP_WORKLOADS: dict[str, WorkloadSpec] = {
    "6s100": WorkloadSpec(_base_6s100, 0.10, 2, 50, 211),
    "6s20": WorkloadSpec(_base_6s20, 0.20, 2, 40, 212),
    "6s203b41": WorkloadSpec(_base_6s203b41, 0.08, 1, 35, 213),
    "6s281b35": WorkloadSpec(_base_6s281b35, 0.12, 3, 55, 214),
    "6s342rb122": WorkloadSpec(_base_6s342rb122, 0.08, 1, 30, 215),
    "6s350rb46": WorkloadSpec(_base_6s350rb46, 0.06, 1, 30, 216),
    "6s382r": WorkloadSpec(_base_6s382r, 0.15, 2, 45, 217),
    "6s392r": WorkloadSpec(_base_6s392r, 0.10, 2, 35, 218),
    "beemfwt4b1": WorkloadSpec(_base_beemfwt4b1, 0.25, 3, 40, 219),
    "beemfwt5b3": WorkloadSpec(_base_beemfwt5b3, 0.25, 3, 45, 220),
    "oski15a07b0s": WorkloadSpec(_base_oski15a07b0s, 0.25, 2, 45, 221),
    "oski2b1i": WorkloadSpec(_base_oski2b1i, 0.30, 3, 50, 222),
    "b18": WorkloadSpec(_base_b18, 0.15, 2, 30, 223),
    "b19": WorkloadSpec(_base_b19, 0.15, 2, 40, 224),
    "leon2": WorkloadSpec(_base_leon2, 0.12, 2, 35, 225),
}


def sweep_workload(name: str) -> Aig:
    """Construct one named SAT-sweeping workload (base circuit + redundancy)."""
    if name not in SWEEP_WORKLOADS:
        raise KeyError(f"unknown sweep workload {name!r}; known: {sorted(SWEEP_WORKLOADS)}")
    spec = SWEEP_WORKLOADS[name]
    base = spec.factory()
    workload, _report = inject_redundancy(
        base,
        duplication_fraction=spec.duplication_fraction,
        constant_cones=spec.constant_cones,
        near_miss_count=spec.near_miss_count,
        seed=spec.seed,
        name=name,
    )
    return workload


def sweep_workload_suite(names: list[str] | None = None) -> dict[str, Aig]:
    """Construct several (by default all) sweep workloads."""
    selected = names if names is not None else list(SWEEP_WORKLOADS)
    return {name: sweep_workload(name) for name in selected}
