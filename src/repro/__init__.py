"""repro: Semi-Tensor Product based circuit simulation and SAT-sweeping.

A from-scratch Python reproduction of "A Semi-Tensor Product based Circuit
Simulation for SAT-sweeping" (DATE 2024): the STP matrix algebra, k-LUT
and AIG network data structures, the STP-based simulator of Algorithm 1,
a CDCL SAT solver with a circuit front-end, the FRAIG baseline sweeper and
the STP-enhanced sweeper of Algorithm 2, benchmark-circuit generators, and
harnesses that regenerate the paper's Table I and Table II.

Quickstart::

    from repro.circuits import epfl_benchmark
    from repro.networks import map_aig_to_klut
    from repro.simulation import PatternSet, simulate_klut_stp
    from repro.sweeping import stp_sweep

    aig = epfl_benchmark("adder")
    klut, _ = map_aig_to_klut(aig, k=6)
    result = simulate_klut_stp(klut, PatternSet.random(aig.num_pis, 256))
    swept, stats = stp_sweep(aig)
"""

from . import circuits, harness, io, networks, sat, simulation, stp, sweeping, truthtable

__version__ = "1.0.0"

__all__ = [
    "circuits",
    "harness",
    "io",
    "networks",
    "sat",
    "simulation",
    "stp",
    "sweeping",
    "truthtable",
    "__version__",
]
