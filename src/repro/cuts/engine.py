"""The shared priority-cut engine.

One :class:`CutEngine` instance serves every cut consumer in the tree:

* the LUT mapper enumerates cuts over a static network
  (:meth:`CutEngine.enumerate_all`);
* DAG-aware rewriting keeps the engine *attached* to a mutating
  :class:`~repro.networks.aig.Aig`: :meth:`~repro.networks.aig.Aig.substitute`
  events invalidate exactly the rewired gates' cut sets (O(fanout) per
  event), freshly created gates register at creation, and the
  dead-cone/revival bookkeeping that used to live privately in
  ``rewriting/rewrite.py`` is part of the engine.  Attachment goes
  through the generic mutation-listener bus of the
  :class:`~repro.networks.protocol.MutableNetwork` protocol (the
  listener signature is network-agnostic); the cut *merging* itself is
  AIG-specific -- two fanin literals per gate -- which is why the
  engine's constructor takes an ``Aig``, not the bare protocol;
* every cut carries its function, fused bottom-up from the fanin cut
  tables through the shared :class:`~repro.cuts.cache.CutFunctionCache`
  -- no consumer ever re-walks a cone to learn a cut's function.

Soundness of the fused tables under rewriting: the pass only commits
function-preserving substitutions, so the composition identity a stored
table expresses (``f_root = table(f_leaf_0, ..., f_leaf_{k-1})`` as
functions of the primary inputs) survives every mutation even when the
*structural* cone has been rewired around a stale leaf.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from ..truthtable import TruthTable
from .cache import CutFunctionCache
from .cut import Cut, merge_cut_sets, trivial_cut

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from ..networks.aig import Aig

__all__ = ["CutEngine", "enumerate_cuts"]


class CutEngine:
    """Priority-cut database over an AIG, static or incrementally maintained.

    Parameters
    ----------
    aig:
        The network.  With ``attach=True`` the engine registers a
        mutation listener (the
        :class:`~repro.networks.protocol.MutableNetwork` listener bus)
        so :meth:`Aig.substitute` / :meth:`Aig.replace_fanin` events
        invalidate the rewired gates' cut sets automatically; call
        :meth:`detach` when done.
    k / cut_limit:
        Cut size bound and priority limit (the trivial cut is always
        kept on top of ``cut_limit - 1`` merged cuts).
    compute_tables:
        Fuse truth-table computation into the merges (on by default).
    cache:
        A shared :class:`CutFunctionCache`; a private one is created
        when omitted.
    """

    def __init__(
        self,
        aig: Aig,
        k: int = 6,
        cut_limit: int = 8,
        compute_tables: bool = True,
        cache: CutFunctionCache | None = None,
        attach: bool = False,
    ) -> None:
        if k < 1:
            raise ValueError("cut size k must be at least 1")
        if cut_limit < 1:
            raise ValueError("cut limit must be at least 1")
        self.aig = aig
        self.k = k
        self.cut_limit = cut_limit
        self.cache = cache if cache is not None else CutFunctionCache()
        self._with_tables = compute_tables
        # The constant node's cut has no leaves; its zero-input constant
        # table expands into "constant false over the merged leaves".
        constant_table = TruthTable.constant(False, 0) if compute_tables else None
        self._db: dict[int, list[Cut]] = {0: [Cut((), constant_table)]}
        for pi in aig.pis:
            self._db[pi] = [trivial_cut(pi, with_table=compute_tables)]
        self._dead: set[int] = set()
        self._attached = False
        self.merges = 0
        self.invalidations = 0
        if attach:
            aig.add_mutation_listener(self._on_mutation)
            self._attached = True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def detach(self) -> None:
        """Unregister the mutation listener (idempotent)."""
        if self._attached:
            self.aig.remove_mutation_listener(self._on_mutation)
            self._attached = False

    def _on_mutation(self, old_node: int, new_literal: int, rewired_gates: Sequence[int]) -> None:
        """Mutation event: drop the cut sets of exactly the rewired gates.

        The replaced node's own entry is dropped too (it is dangling
        now); rewired gates recompute lazily from their live fanins on
        the next access.  Work per event is O(len(rewired_gates)).
        """
        self._db.pop(old_node, None)
        for gate in rewired_gates:
            if self._db.pop(gate, None) is not None:
                self.invalidations += 1

    # ------------------------------------------------------------------
    # Cut access
    # ------------------------------------------------------------------

    def cuts(self, node: int) -> list[Cut]:
        """Cut set of ``node``, computing (and storing) it on demand.

        Missing fanin cut sets are computed first, iteratively, so a
        chain of invalidated gates never recurses deeply.  A node with
        no computable fanins (a PI or the constant) answers its trivial
        set directly.
        """
        cached = self._db.get(node)
        if cached is not None:
            return cached
        if not self.aig.is_and(node):
            result = [trivial_cut(node, with_table=self._with_tables)]
            self._db[node] = result
            return result
        stack = [node]
        while stack:
            current = stack[-1]
            if current in self._db:
                stack.pop()
                continue
            missing = [
                fanin
                for fanin in self.aig.fanin_nodes(current)
                if fanin not in self._db and self.aig.is_and(fanin)
            ]
            if missing:
                stack.extend(missing)
                continue
            stack.pop()
            self._db[current] = self._merge(current)
        return self._db[node]

    def compute(self, node: int) -> list[Cut]:
        """(Re)compute the cut set of ``node`` from its live fanins and store it.

        Rewriting calls this when visiting a node: the unconditional
        recompute folds in any fanin rewiring that happened since the
        node's cuts were last registered (e.g. at creation time).
        """
        cuts = self._merge(node)
        self._db[node] = cuts
        return cuts

    def note_created(self, node: int) -> None:
        """Register a freshly created gate (no-op if it already has cuts)."""
        if self.aig.is_and(node) and node not in self._db:
            self._db[node] = self._merge(node)

    def _merge(self, node: int) -> list[Cut]:
        fanin0, fanin1 = self.aig.fanins(node)
        node0, node1 = fanin0 >> 1, fanin1 >> 1
        cuts0 = self._db.get(node0)
        if cuts0 is None:
            cuts0 = self.cuts(node0)
        cuts1 = self._db.get(node1)
        if cuts1 is None:
            cuts1 = self.cuts(node1)
        self.merges += 1
        return merge_cut_sets(
            node,
            fanin0,
            fanin1,
            cuts0,
            cuts1,
            self.k,
            self.cut_limit,
            self.cache if self._with_tables else None,
        )

    def enumerate_all(self) -> dict[int, list[Cut]]:
        """Cut sets of every gate, computed in one topological pass.

        This is the static-enumeration entry point the mapper uses; the
        returned dictionary is the live database (constant, PIs and
        gates), so callers must not mutate it.
        """
        for node in self.aig.topological_order():
            if node not in self._db:
                self._db[node] = self._merge(node)
        return self._db

    # ------------------------------------------------------------------
    # Dead-cone bookkeeping (rewriting's staleness/revival logic)
    # ------------------------------------------------------------------

    @property
    def num_dead(self) -> int:
        """Number of gates currently marked dead."""
        return len(self._dead)

    def is_dead(self, node: int) -> bool:
        """True if ``node`` is marked as freed by a substitution."""
        return node in self._dead

    def kill(self, nodes: Iterable[int]) -> None:
        """Mark a substitution's freed cone (typically the root's MFFC) dead."""
        self._dead.update(nodes)

    def revive_from(self, start: int) -> int:
        """Un-kill every dead gate reachable through the fanins of ``start``.

        A replacement cone may reuse gates an earlier substitution left
        for dead (structural hashing resurrects them); those gates --
        and their fanin cones, which they keep referenced -- are live
        again.  Revived gates without a registered cut set get the
        trivial one (their stored sets, when present, are still sound:
        see the module docstring).  Returns the number of revived gates.
        """
        aig = self.aig
        revived = 0
        stack = [start]
        while stack:
            node = stack.pop()
            if not aig.is_and(node):
                continue
            changed = False
            if node in self._dead:
                self._dead.discard(node)
                revived += 1
                changed = True
            if node not in self._db:
                self._db[node] = [trivial_cut(node, with_table=self._with_tables)]
                changed = True
            if changed:
                stack.extend(aig.fanin_nodes(node))
        return revived

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Flat numeric view: merges, invalidations, dead count, cache stats."""
        result = {
            "merges": float(self.merges),
            "invalidations": float(self.invalidations),
            "dead": float(self.num_dead),
            "nodes_with_cuts": float(len(self._db)),
        }
        result.update(self.cache.stats())
        return result


def enumerate_cuts(aig: Aig, k: int = 6, cut_limit: int = 8) -> dict[int, list[Cut]]:
    """Priority-cut enumeration: up to ``cut_limit`` k-feasible cuts per node.

    Compatibility wrapper over :class:`CutEngine` (static mode, fused
    tables included); every node keeps its trivial cut and cuts are
    propagated in topological order exactly as before.
    """
    return CutEngine(aig, k=k, cut_limit=cut_limit).enumerate_all()
