"""The shared priority-cut engine.

One :class:`CutEngine` instance serves every cut consumer in the tree:

* the LUT mapper enumerates cuts over a static network
  (:meth:`CutEngine.enumerate_all`);
* DAG-aware rewriting keeps the engine *attached* to a mutating
  :class:`~repro.networks.aig.Aig`: :meth:`~repro.networks.aig.Aig.substitute`
  events invalidate exactly the rewired gates' cut sets (O(fanout) per
  event), freshly created gates register at creation, and the
  dead-cone/revival bookkeeping that used to live privately in
  ``rewriting/rewrite.py`` is part of the engine.  Attachment goes
  through the generic mutation-listener bus of the
  :class:`~repro.networks.protocol.MutableNetwork` protocol (the
  listener signature is network-agnostic); the cut *merging* itself is
  AIG-specific -- two fanin literals per gate -- which is why the
  engine's constructor takes an ``Aig``, not the bare protocol;
* every cut carries its function, fused bottom-up from the fanin cut
  tables through the shared :class:`~repro.cuts.cache.CutFunctionCache`
  -- no consumer ever re-walks a cone to learn a cut's function;
* with ``use_choices`` the engine merges cut sets **across choice
  classes**: every class member's set is the union of its own
  structural cuts and the (phase-complemented) cuts of the other
  members, so downstream merges and the mapper transparently select
  among all recorded implementations.

Soundness of the fused tables under rewriting: the pass only commits
function-preserving substitutions, so the composition identity a stored
table expresses (``f_root = table(f_leaf_0, ..., f_leaf_{k-1})`` as
functions of the primary inputs) survives every mutation even when the
*structural* cone has been rewired around a stale leaf.

Soundness of choice-merged cuts: a member's table over its leaves is
complemented through the class phases
(:meth:`~repro.cuts.cache.CutFunctionCache.complement_table`, memoised under
the same structural-signature regime as the merge tables), so a cut
borrowed from an alternative expresses the *borrowing* node's function
exactly.  Acyclicity of any mapping drawn from the merged sets is the
network's choice-collapsed invariant (see
:mod:`repro.networks.incremental`); enumeration follows the network's
``choice_topological_order`` so every leaf a borrowed cut can reach is
enumerated first.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from ..truthtable import TruthTable
from .cache import CutFunctionCache
from .cut import Cut, merge_cut_sets, trivial_cut

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from ..networks.aig import Aig
    from ..resilience import Budget

__all__ = ["CutEngine", "enumerate_cuts"]


class CutEngine:
    """Priority-cut database over an AIG, static or incrementally maintained.

    Parameters
    ----------
    aig:
        The network.  With ``attach=True`` the engine registers a
        mutation listener (the
        :class:`~repro.networks.protocol.MutableNetwork` listener bus)
        so :meth:`Aig.substitute` / :meth:`Aig.replace_fanin` events
        invalidate the rewired gates' cut sets automatically; call
        :meth:`detach` when done.
    k / cut_limit:
        Cut size bound and priority limit (the trivial cut is always
        kept on top of ``cut_limit - 1`` merged cuts).
    compute_tables:
        Fuse truth-table computation into the merges (on by default).
    cache:
        A shared :class:`CutFunctionCache`; a private one is created
        when omitted.
    use_choices:
        Merge cut sets across the network's choice classes: every class
        member's served set is its own structural cuts plus the
        phase-complemented cuts of the other members (capped at
        ``choice_limit``).  With ``attach=True`` the engine also
        registers a choice listener so class changes invalidate exactly
        the affected members.
    choice_limit:
        Bound on a class-merged cut set (``2 * cut_limit`` when
        omitted); a member's own cuts take priority, borrowed cuts fill
        the remainder smallest-first.
    budget:
        Optional :class:`repro.resilience.Budget`; the enumeration loops
        poll its deadline every :data:`BUDGET_POLL_STRIDE` nodes and
        raise ``BudgetExceeded`` when it expires (the engine's database
        stays consistent -- already-computed sets remain valid).
    """

    #: Enumeration nodes between two deadline polls.
    BUDGET_POLL_STRIDE = 256

    def __init__(
        self,
        aig: Aig,
        k: int = 6,
        cut_limit: int = 8,
        compute_tables: bool = True,
        cache: CutFunctionCache | None = None,
        attach: bool = False,
        use_choices: bool = False,
        choice_limit: int | None = None,
        budget: "Budget | None" = None,
    ) -> None:
        if k < 1:
            raise ValueError("cut size k must be at least 1")
        if cut_limit < 1:
            raise ValueError("cut limit must be at least 1")
        self.aig = aig
        self.k = k
        self.cut_limit = cut_limit
        self.cache = cache if cache is not None else CutFunctionCache()
        self._with_tables = compute_tables
        self.use_choices = use_choices
        self.choice_limit = choice_limit if choice_limit is not None else 2 * cut_limit
        # The constant node's cut has no leaves; its zero-input constant
        # table expands into "constant false over the merged leaves".
        constant_table = TruthTable.constant(False, 0) if compute_tables else None
        self._db: dict[int, list[Cut]] = {0: [Cut((), constant_table)]}
        # Structural-only sets of choice-class members; the served
        # (class-merged) sets live in _db.
        self._own: dict[int, list[Cut]] = {}
        for pi in aig.pis:
            self._db[pi] = [trivial_cut(pi, with_table=compute_tables)]
        self._dead: set[int] = set()
        self._attached = False
        self.budget = budget
        self._poll_countdown = self.BUDGET_POLL_STRIDE
        self.merges = 0
        self.invalidations = 0
        if attach:
            aig.add_mutation_listener(self._on_mutation)
            aig.add_choice_listener(self._on_choice)
            self._attached = True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def detach(self) -> None:
        """Unregister the mutation/choice listeners (idempotent)."""
        if self._attached:
            self.aig.remove_mutation_listener(self._on_mutation)
            self.aig.remove_choice_listener(self._on_choice)
            self._attached = False

    def _on_mutation(self, old_node: int, new_literal: int, rewired_gates: Sequence[int]) -> None:
        """Mutation event: drop the cut sets of exactly the rewired gates.

        The replaced node's own entry is dropped too (it is dangling
        now); rewired gates recompute lazily from their live fanins on
        the next access.  Work per event is O(len(rewired_gates)).
        """
        self._db.pop(old_node, None)
        self._own.pop(old_node, None)
        for gate in rewired_gates:
            self._own.pop(gate, None)
            if self._db.pop(gate, None) is not None:
                self.invalidations += 1

    def _poll_budget(self) -> None:
        """Strided cooperative deadline poll for the enumeration loops."""
        if self.budget is None:
            return
        self._poll_countdown -= 1
        if self._poll_countdown <= 0:
            self._poll_countdown = self.BUDGET_POLL_STRIDE
            self.budget.checkpoint("cuts")

    def _on_choice(self, representative: int, members: Sequence[int]) -> None:
        """Choice event: drop the served sets of the affected class members.

        Their structural-only sets stay valid; the class-merged view is
        rebuilt lazily on the next access.  Work per event is
        O(len(members)).
        """
        for member in members:
            self._db.pop(member, None)

    # ------------------------------------------------------------------
    # Cut access
    # ------------------------------------------------------------------

    def cuts(self, node: int) -> list[Cut]:
        """Cut set of ``node``, computing (and storing) it on demand.

        Missing fanin cut sets are computed first, iteratively, so a
        chain of invalidated gates never recurses deeply.  A node with
        no computable fanins (a PI or the constant) answers its trivial
        set directly.  With ``use_choices``, a choice-class member's set
        is the class-merged view: the member's own structural cuts plus
        the phase-complemented cuts of the other members (all members'
        structural sets are computed together, then combined).
        """
        cached = self._db.get(node)
        if cached is not None:
            return cached
        if not self.aig.is_and(node):
            result = [trivial_cut(node, with_table=self._with_tables)]
            self._db[node] = result
            return result
        use_choices = self.use_choices and self.aig.has_choices
        stack = [node]
        while stack:
            self._poll_budget()
            current = stack[-1]
            if current in self._db:
                stack.pop()
                continue
            members = self.aig.choice_members(current) if use_choices else [current]
            missing: list[int] = []
            if len(members) == 1:
                missing.extend(
                    fanin
                    for fanin in self.aig.fanin_nodes(current)
                    if fanin not in self._db and self.aig.is_and(fanin)
                )
                if missing:
                    stack.extend(missing)
                    continue
                stack.pop()
                self._db[current] = self._merge(current)
                continue
            # A choice class: every member's structural set is needed
            # before any member's merged view can be served.  The class-
            # collapsed acyclicity invariant guarantees no member's cone
            # reaches back into the class, so the stack terminates.
            for member in members:
                if member not in self._own:
                    missing.extend(
                        fanin
                        for fanin in self.aig.fanin_nodes(member)
                        if fanin not in self._db and self.aig.is_and(fanin)
                    )
            if missing:
                stack.extend(missing)
                continue
            stack.pop()
            for member in members:
                if member not in self._own:
                    self._own[member] = self._merge(member)
            for member in members:
                if member not in self._db:
                    self._db[member] = self._combine_class(member, members)
        return self._db[node]

    def _combine_class(self, node: int, members: Sequence[int]) -> list[Cut]:
        """Class-merged cut set served for ``node``.

        The member's own cuts keep their priority (they stay first, so
        downstream truncation prefers them -- a choice-augmented run can
        only widen, never displace, the plain selection at equal size);
        cuts borrowed from the other members follow smallest-first, with
        their fused tables complemented through the relative phases, and
        each member's *trivial* cut stays private (a borrowed wire would
        alias the class).  The result is capped at ``choice_limit``.
        """
        own = self._own[node]
        combined = [cut for cut in own if cut.leaves != (node,)]
        seen = {cut.leaves for cut in combined}
        node_phase = self.aig.choice_phase(node)
        borrowed: list[Cut] = []
        for member in members:
            if member == node:
                continue
            # The structural-only set when available; an already-served
            # (class-merged) set is an equally sound source -- its
            # tables express the member's function and duplicates are
            # filtered by leaf set.
            source = self._own.get(member)
            if source is None:
                source = self._db.get(member)
            if source is None:
                continue
            phase = self.aig.choice_phase(member) ^ node_phase
            for cut in source:
                if cut.leaves == (member,) or cut.leaves in seen:
                    continue
                seen.add(cut.leaves)
                table = cut.table
                if table is not None and phase:
                    table = self.cache.complement_table(table)
                borrowed.append(Cut(cut.leaves, table))
        borrowed.sort(key=lambda cut: cut.size)
        room = max(0, self.choice_limit - 1 - len(combined))
        combined.extend(borrowed[:room])
        combined.append(trivial_cut(node, with_table=self._with_tables))
        return combined

    def compute(self, node: int) -> list[Cut]:
        """(Re)compute the cut set of ``node`` from its live fanins and store it.

        Rewriting calls this when visiting a node: the unconditional
        recompute folds in any fanin rewiring that happened since the
        node's cuts were last registered (e.g. at creation time).  With
        ``use_choices`` the recomputed structural set is re-merged with
        the node's class (the other members' sets are reused as cached).
        """
        cuts = self._merge(node)
        if self.use_choices:
            members = self.aig.choice_members(node)
            if len(members) > 1:
                self._own[node] = cuts
                for member in members:
                    if member != node and member not in self._own:
                        self.cuts(member)
                cuts = self._combine_class(node, members)
        self._db[node] = cuts
        return cuts

    def note_created(self, node: int) -> None:
        """Register a freshly created gate (no-op if it already has cuts)."""
        if self.aig.is_and(node) and node not in self._db:
            self._db[node] = self._merge(node)

    def _merge(self, node: int) -> list[Cut]:
        fanin0, fanin1 = self.aig.fanins(node)
        node0, node1 = fanin0 >> 1, fanin1 >> 1
        cuts0 = self._db.get(node0)
        if cuts0 is None:
            cuts0 = self.cuts(node0)
        cuts1 = self._db.get(node1)
        if cuts1 is None:
            cuts1 = self.cuts(node1)
        self.merges += 1
        return merge_cut_sets(
            node,
            fanin0,
            fanin1,
            cuts0,
            cuts1,
            self.k,
            self.cut_limit,
            self.cache if self._with_tables else None,
        )

    def enumerate_all(self) -> dict[int, list[Cut]]:
        """Cut sets of every gate, computed in one topological pass.

        This is the static-enumeration entry point the mapper uses; the
        returned dictionary is the live database (constant, PIs and
        gates), so callers must not mutate it.  With ``use_choices`` the
        pass follows the network's ``choice_topological_order`` (all
        structural fanins of a class precede every member) and the
        stored sets are the class-merged views.
        """
        if self.use_choices and self.aig.has_choices:
            for node in self.aig.choice_topological_order():
                self._poll_budget()
                if node not in self._db:
                    self.cuts(node)
            return self._db
        for node in self.aig.topological_order():
            self._poll_budget()
            if node not in self._db:
                self._db[node] = self._merge(node)
        return self._db

    def enumerate_nodes(self, nodes: Iterable[int]) -> dict[int, list[Cut]]:
        """Cut sets of ``nodes`` (plus their fanin cones), nothing else.

        The restricted-enumeration entry point: the choice-aware
        mapper's *plain fallback* run maps only the PO-reachable subject
        graph, so enumerating the (possibly subject-sized) dangling
        alternative cones would be pure waste.  Missing fanin sets
        resolve lazily through :meth:`cuts`; the returned dictionary is
        the live database, as with :meth:`enumerate_all`.
        """
        for node in nodes:
            self._poll_budget()
            if node not in self._db:
                self.cuts(node)
        return self._db

    # ------------------------------------------------------------------
    # Dead-cone bookkeeping (rewriting's staleness/revival logic)
    # ------------------------------------------------------------------

    @property
    def num_dead(self) -> int:
        """Number of gates currently marked dead."""
        return len(self._dead)

    def is_dead(self, node: int) -> bool:
        """True if ``node`` is marked as freed by a substitution."""
        return node in self._dead

    def kill(self, nodes: Iterable[int]) -> None:
        """Mark a substitution's freed cone (typically the root's MFFC) dead."""
        self._dead.update(nodes)

    def revive_from(self, start: int) -> int:
        """Un-kill every dead gate reachable through the fanins of ``start``.

        A replacement cone may reuse gates an earlier substitution left
        for dead (structural hashing resurrects them); those gates --
        and their fanin cones, which they keep referenced -- are live
        again.  Revived gates without a registered cut set get the
        trivial one (their stored sets, when present, are still sound:
        see the module docstring).  Returns the number of revived gates.
        """
        aig = self.aig
        revived = 0
        stack = [start]
        while stack:
            node = stack.pop()
            if not aig.is_and(node):
                continue
            changed = False
            if node in self._dead:
                self._dead.discard(node)
                revived += 1
                changed = True
            if node not in self._db:
                self._db[node] = [trivial_cut(node, with_table=self._with_tables)]
                changed = True
            if changed:
                stack.extend(aig.fanin_nodes(node))
        return revived

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Flat numeric view: merges, invalidations, dead count, cache stats."""
        result = {
            "merges": float(self.merges),
            "invalidations": float(self.invalidations),
            "dead": float(self.num_dead),
            "nodes_with_cuts": float(len(self._db)),
        }
        result.update(self.cache.stats())
        return result


def enumerate_cuts(aig: Aig, k: int = 6, cut_limit: int = 8) -> dict[int, list[Cut]]:
    """Priority-cut enumeration: up to ``cut_limit`` k-feasible cuts per node.

    Compatibility wrapper over :class:`CutEngine` (static mode, fused
    tables included); every node keeps its trivial cut and cuts are
    propagated in topological order exactly as before.
    """
    return CutEngine(aig, k=k, cut_limit=cut_limit).enumerate_all()
