"""Shared priority-cut engine: one cut machinery for the whole tree.

This package is the single home of cut computation.  Mapping, DAG-aware
rewriting and the simulation layer all consume the same pieces:

* :class:`Cut` / :func:`merge_cut_sets` -- the cut datatype and the one
  merge/dominance implementation (``repro/cuts/cut.py``);
* :class:`CutEngine` / :func:`enumerate_cuts` -- static enumeration and
  incremental maintenance against :meth:`~repro.networks.aig.Aig.substitute`
  events, with dead-cone/revival bookkeeping (``repro/cuts/engine.py``);
* :class:`CutFunctionCache` -- fused cut functions memoised under
  structural signatures, with NPN-canonical lookup (``repro/cuts/cache.py``);
* :func:`aig_cone_table` / :func:`klut_cone_table` -- the validating
  reference cone walkers (``repro/cuts/cone.py``);
* :class:`SimulationCut` and friends -- the paper's simulation-cut
  algorithm (``repro/cuts/simcuts.py``).
"""

from .cache import CutFunctionCache
from .cone import aig_cone_table, klut_cone_table
from .cut import Cut, merge_cut_sets, trivial_cut
from .engine import CutEngine, enumerate_cuts
from .simcuts import SimulationCut, cut_truth_table, simulation_cuts, simulation_cuts_generic

__all__ = [
    "Cut",
    "CutEngine",
    "CutFunctionCache",
    "SimulationCut",
    "aig_cone_table",
    "cut_truth_table",
    "enumerate_cuts",
    "klut_cone_table",
    "merge_cut_sets",
    "simulation_cuts",
    "simulation_cuts_generic",
    "trivial_cut",
]
