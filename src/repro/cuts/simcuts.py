"""The paper's simulation cuts (Section III-B), on the shared cut layer.

Given the set of nodes whose simulation signatures are requested, the
network is partitioned into tree-structured cuts whose leaf counts
respect a limit derived from the number of simulation patterns
(``limit = floor(log2(#patterns))``).  Single-fanout chains collapse
into one cut; multi-fanout nodes and requested nodes form cut
boundaries so that no value is recomputed.

Cut functions are computed by the shared k-LUT cone walker
(:func:`repro.cuts.cone.klut_cone_table`); the STP simulator passes its
own word-level minterm composition into the same walker instead of
keeping a private copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from ..truthtable import TruthTable
from .cone import klut_cone_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from ..networks.klut import KLutNetwork
    from ..networks.protocol import LogicNetwork

__all__ = ["SimulationCut", "simulation_cuts", "simulation_cuts_generic", "cut_truth_table"]


@dataclass(frozen=True)
class SimulationCut:
    """One tree cut produced by the paper's simulation-cut algorithm.

    Attributes
    ----------
    root:
        The node whose value the cut computes.
    leaves:
        Boundary nodes whose values the cut consumes (other cut roots,
        requested nodes or primary inputs), in a fixed order.
    volume:
        Interior nodes absorbed into the cut (excluding the root), in
        topological order; these nodes are *not* simulated individually.
    """

    root: int
    leaves: tuple[int, ...]
    volume: tuple[int, ...]

    @property
    def size(self) -> int:
        """Number of leaves."""
        return len(self.leaves)


def simulation_cuts_generic(
    targets: Sequence[int],
    fanins_of: Callable[[int], Iterable[int]],
    is_source: Callable[[int], bool],
    limit: int,
    extra_boundary: Iterable[int] = (),
) -> list[SimulationCut]:
    """Partition the TFI of ``targets`` into tree cuts with at most ``limit`` leaves.

    ``is_source`` marks nodes that already carry values (PIs, constants);
    they never become cut roots.  ``extra_boundary`` can force additional
    nodes to be cut boundaries (the STP sweeper uses this to keep all
    members of an equivalence class visible).  Cuts are returned in
    topological order (a cut only consumes leaves that are sources or roots
    of earlier cuts).
    """
    if limit < 1:
        raise ValueError("cut leaf limit must be at least 1")

    # Collect the cone and per-node fanout counts *within* the cone.
    cone: list[int] = []
    seen: set[int] = set()
    stack = [t for t in targets]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        cone.append(node)
        if is_source(node):
            continue
        stack.extend(fanins_of(node))
    fanout_in_cone: dict[int, int] = {node: 0 for node in cone}
    for node in cone:
        if is_source(node):
            continue
        for fanin in fanins_of(node):
            fanout_in_cone[fanin] = fanout_in_cone.get(fanin, 0) + 1

    boundary: set[int] = set(targets) | set(extra_boundary)
    boundary.update(node for node, count in fanout_in_cone.items() if count >= 2)

    def expand(root: int) -> tuple[list[int], list[int]]:
        """Leaves and interior volume of the tree cut rooted at ``root``."""
        leaves: list[int] = []
        volume: list[int] = []
        work = list(fanins_of(root))
        while work:
            node = work.pop(0)
            if is_source(node) or node in boundary:
                if node not in leaves:
                    leaves.append(node)
                continue
            volume.append(node)
            work.extend(fanins_of(node))
        return leaves, volume

    def subtree_leaf_count(node: int) -> int:
        """Leaves of the subtree hanging below an interior node."""
        count = 0
        work = list(fanins_of(node))
        seen_local: set[int] = set()
        while work:
            child = work.pop()
            if child in seen_local:
                continue
            seen_local.add(child)
            if is_source(child) or child in boundary:
                count += 1
            else:
                work.extend(fanins_of(child))
        return count

    pending = [t for t in targets if not is_source(t)]
    processed: dict[int, SimulationCut] = {}
    queue = list(dict.fromkeys(pending))
    while queue:
        root = queue.pop(0)
        if root in processed or is_source(root):
            continue
        leaves, volume = expand(root)
        # Enforce the leaf limit by promoting the heaviest interior node to
        # a boundary (it becomes a cut of its own) and re-expanding.
        while len(leaves) > limit:
            candidates = [n for n in volume if 1 < subtree_leaf_count(n) < len(leaves)]
            if not candidates:
                break
            heaviest = max(candidates, key=subtree_leaf_count)
            boundary.add(heaviest)
            leaves, volume = expand(root)
        processed[root] = SimulationCut(root, tuple(leaves), tuple(volume))
        for leaf in leaves:
            if not is_source(leaf) and leaf not in processed:
                queue.append(leaf)

    # Order cuts topologically: a cut goes after the cuts of its non-source leaves.
    order: list[SimulationCut] = []
    emitted: set[int] = set()

    def emit(root: int) -> None:
        stack2: list[tuple[int, bool]] = [(root, False)]
        while stack2:
            node, expanded = stack2.pop()
            if expanded:
                order.append(processed[node])
                emitted.add(node)
                continue
            if node in emitted or node not in processed:
                continue
            emitted.add(node)
            stack2.append((node, True))
            for leaf in processed[node].leaves:
                if leaf in processed and leaf not in emitted:
                    stack2.append((leaf, False))

    # ``emitted`` doubles as a visited marker during the DFS; reset per root
    # is unnecessary because processed cuts are appended exactly once.
    emitted.clear()
    for target in targets:
        if target in processed and target not in emitted:
            emit(target)
    for root in processed:
        if root not in emitted:
            emit(root)
    return order


def simulation_cuts(network: "LogicNetwork", targets: Sequence[int], limit: int) -> list[SimulationCut]:
    """The paper's simulation-cut algorithm on any logic network.

    Operates on the :class:`~repro.networks.protocol.LogicNetwork` read
    surface (``gate_fanin_nodes`` / ``is_gate``), so the partitioning
    works identically on k-LUT networks (the paper's setting) and AIGs.
    """
    return simulation_cuts_generic(
        targets,
        network.gate_fanin_nodes,
        lambda node: not network.is_gate(node),
        limit,
    )


def cut_truth_table(network: "KLutNetwork", root: int, leaves: Sequence[int]) -> TruthTable:
    """Truth table of ``root`` as a function of ``leaves`` on a k-LUT network.

    This is the reference (composition-based) construction; the STP
    simulator computes the same function through structural-matrix
    products, and the two are cross-checked in the test suite.
    """
    return klut_cone_table(network, root, leaves)
