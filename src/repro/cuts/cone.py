"""Reference cone-to-truth-table walkers for AIGs and k-LUT networks.

The fused cut engine never walks cones -- tables ride along with the
cuts -- but a reference construction is still needed: the simulation
cuts compute over k-LUT networks, the sweeping workloads build local
functions of ad-hoc leaf sets, and tests cross-check the fused tables
against these walkers.

Both walkers *validate* the leaf set.  A leaf set "cuts" a cone when
every path from the root to a primary input passes through a leaf; a
set that does not produces a table that silently misrepresents the
root's function (the root still depends on nodes the table does not
mention).  Reaching an unlisted PI therefore raises, and -- unless
``allow_unused_leaves`` is set -- so does listing a leaf the cone walk
never reaches, which is how stale or mismatched leaf sets used to slip
through as don't-care inputs.  Window-style callers (the STP sweeper's
shared simulation windows) legitimately pass a superset of the support
and opt out with ``allow_unused_leaves=True``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from ..truthtable import TruthTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from ..networks.aig import Aig
    from ..networks.klut import KLutNetwork

__all__ = ["aig_cone_table", "klut_cone_table"]


def aig_cone_table(
    aig: "Aig",
    root: int,
    leaves: Sequence[int],
    allow_unused_leaves: bool = False,
) -> TruthTable:
    """Truth table of AIG node ``root`` as a function of the cut ``leaves``.

    ``leaves`` are node indices; leaf ``i`` becomes input ``i`` of the
    resulting table.  Raises :class:`ValueError` when the leaf set does
    not actually cut the cone: a primary input reached without being
    listed, a leaf index that is not a node of the network, or (unless
    ``allow_unused_leaves``) a listed leaf the cone never reaches.
    """
    leaf_positions = {leaf: index for index, leaf in enumerate(leaves)}
    num_vars = len(leaves)
    for leaf in leaves:
        if not 0 <= leaf < aig.num_nodes:
            raise ValueError(f"cut leaf {leaf} is not a node of the network")
    memo: dict[int, TruthTable] = {}

    def table_of(current: int) -> TruthTable:
        if current in memo:
            return memo[current]
        if current in leaf_positions:
            result = TruthTable.variable(leaf_positions[current], num_vars)
        elif aig.is_constant(current):
            result = TruthTable.constant(False, num_vars)
        elif aig.is_pi(current):
            raise ValueError(f"primary input {current} reached but not listed as a cut leaf")
        else:
            fanin0, fanin1 = aig.fanins(current)
            table0 = table_of(aig.node_of(fanin0))
            table1 = table_of(aig.node_of(fanin1))
            if aig.is_complemented(fanin0):
                table0 = ~table0
            if aig.is_complemented(fanin1):
                table1 = ~table1
            result = table0 & table1
        memo[current] = result
        return result

    table = table_of(root)
    if not allow_unused_leaves:
        unused = [leaf for leaf in leaves if leaf not in memo]
        if unused:
            raise ValueError(
                f"leaves {unused} are not part of the cone of node {root}: "
                "the leaf set does not cut the cone (pass allow_unused_leaves=True "
                "for window semantics where extra leaves are don't-cares)"
            )
    return table


def klut_cone_table(
    network: "KLutNetwork",
    root: int,
    leaves: Sequence[int],
    compose: Callable[[TruthTable, Sequence[TruthTable], int], TruthTable] | None = None,
    allow_unused_leaves: bool = False,
) -> TruthTable:
    """Truth table of k-LUT node ``root`` as a function of ``leaves``.

    ``compose(function, fanin_tables, num_vars)`` combines one LUT's
    function with its fanin tables; the default uses
    :meth:`TruthTable.compose`, and the STP simulator passes its
    word-level minterm composition so both paths share this one walker.
    Leaf validation matches :func:`aig_cone_table`.
    """
    leaf_positions = {leaf: index for index, leaf in enumerate(leaves)}
    num_vars = len(leaves)
    for leaf in leaves:
        if not 0 <= leaf < network.num_nodes:
            raise ValueError(f"cut leaf {leaf} is not a node of the network")
    memo: dict[int, TruthTable] = {}

    def table_of(node: int) -> TruthTable:
        if node in memo:
            return memo[node]
        if node in leaf_positions:
            result = TruthTable.variable(leaf_positions[node], num_vars)
        elif network.is_constant(node):
            result = TruthTable.constant(network.constant_value(node), num_vars)
        elif network.is_pi(node):
            raise ValueError(f"primary input {node} reached but not listed as a cut leaf")
        else:
            fanin_tables = [table_of(f) for f in network.lut_fanins(node)]
            function = network.lut_function(node)
            if compose is None:
                result = function.compose(fanin_tables)
            else:
                result = compose(function, fanin_tables, num_vars)
        memo[node] = result
        return result

    table = table_of(root)
    if not allow_unused_leaves:
        unused = [leaf for leaf in leaves if leaf not in memo]
        if unused:
            raise ValueError(
                f"leaves {unused} are not part of the cone of node {root}: "
                "the leaf set does not cut the cone (pass allow_unused_leaves=True "
                "for window semantics where extra leaves are don't-cares)"
            )
    return table
