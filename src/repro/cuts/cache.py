"""Memoisation of cut functions, keyed by structural signatures.

The expensive step of fused cut merging is expanding the two fanin
tables to the merged leaf set and combining them.  The result depends
only on the *structural signature* of the merge -- the fanin table bits,
the positions the fanin leaves take inside the merged leaf set, and the
fanin complement flags -- never on the concrete node indices.  Real
netlists repeat local structures constantly (adder chains, shifter
stages, decoder slices), so a signature-keyed cache turns most merges
into one dictionary lookup.  The hit rate is reported by the mapper and
the ``repro map`` CLI.

The cache also memoises NPN-canonical lookup of cut functions (arity
<= 4): rewriting prices one library structure per NPN class, so the
class of a repeated cut function resolves without re-running the
768-transform search.
"""

from __future__ import annotations

from ..truthtable import TruthTable

__all__ = ["CutFunctionCache"]

#: Memoised source-index tuples for table expansion, keyed by
#: ``(positions, num_vars)``: entry ``a`` is the fanin-table assignment
#: matching merged-table assignment ``a``.
_EXPAND_SOURCES: dict[tuple[tuple[int, ...], int], tuple[int, ...]] = {}


def _expand_sources(positions: tuple[int, ...], num_vars: int) -> tuple[int, ...]:
    key = (positions, num_vars)
    sources = _EXPAND_SOURCES.get(key)
    if sources is None:
        gathered = []
        for assignment in range(1 << num_vars):
            source = 0
            for index, position in enumerate(positions):
                if (assignment >> position) & 1:
                    source |= 1 << index
            gathered.append(source)
        sources = tuple(gathered)
        _EXPAND_SOURCES[key] = sources
    return sources


def _expand_bits(bits: int, positions: tuple[int, ...], num_vars: int) -> int:
    """Re-express table ``bits`` over ``num_vars`` inputs, input ``i`` moving to ``positions[i]``."""
    if positions == tuple(range(num_vars)):
        return bits
    out = 0
    for assignment, source in enumerate(_expand_sources(positions, num_vars)):
        if (bits >> source) & 1:
            out |= 1 << assignment
    return out


class CutFunctionCache:
    """Structural-signature-keyed memo of fused cut-merge functions.

    One instance is shared by every consumer of a
    :class:`~repro.cuts.engine.CutEngine`; ``hits``/``misses`` count the
    merge-table lookups and :attr:`hit_rate` is the headline number the
    mapping benchmarks record.
    """

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.npn_hits = 0
        self.npn_misses = 0
        self._tables: dict[tuple[int, ...], TruthTable] = {}
        self._npn: dict[tuple[int, int], TruthTable] = {}
        self._complements: dict[tuple[int, int], TruthTable] = {}

    # -- fused merge tables -------------------------------------------------

    def merge_table(
        self,
        table0: TruthTable,
        leaves0: tuple[int, ...],
        comp0: int,
        table1: TruthTable,
        leaves1: tuple[int, ...],
        comp1: int,
        leaves: tuple[int, ...],
    ) -> TruthTable:
        """Function of ``AND(fanin0 ^ comp0, fanin1 ^ comp1)`` over ``leaves``.

        ``table0``/``table1`` are the fanin cut functions over
        ``leaves0``/``leaves1`` (both subsets of ``leaves``).  The result
        is memoised under the merge's structural signature, so two
        structurally identical merges anywhere in the network share one
        computation.
        """
        positions = {leaf: index for index, leaf in enumerate(leaves)}
        pos0 = tuple(positions[leaf] for leaf in leaves0)
        pos1 = tuple(positions[leaf] for leaf in leaves1)
        key = (table0.bits, *pos0, -1 - comp0, table1.bits, *pos1, -1 - comp1, len(leaves))
        cached = self._tables.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        num_vars = len(leaves)
        full = (1 << (1 << num_vars)) - 1
        bits0 = _expand_bits(table0.bits, pos0, num_vars)
        bits1 = _expand_bits(table1.bits, pos1, num_vars)
        if comp0:
            bits0 ^= full
        if comp1:
            bits1 ^= full
        result = TruthTable(num_vars, bits0 & bits1)
        self._tables[key] = result
        return result

    def complement_table(self, table: TruthTable) -> TruthTable:
        """Complement of a fused cut table, memoised by signature.

        Choice-aware cut merging borrows a class member's cuts for the
        other members; a member of opposite phase contributes the
        *complement* of its fused table.  The complement is keyed by the
        table's structural signature (``(num_vars, bits)``), so repeated
        borrows across a class -- and across structurally identical
        classes -- share one interned table object instead of allocating
        a fresh complement per borrow.
        """
        key = (table.num_vars, table.bits)
        cached = self._complements.get(key)
        if cached is None:
            cached = ~table
            self._complements[key] = cached
        return cached

    # -- NPN-canonical lookup -----------------------------------------------

    def npn_canonical(self, table: TruthTable) -> TruthTable | None:
        """NPN-canonical representative of a cut function, memoised.

        Functions wider than the exact-canonicalization bound (4 inputs)
        report ``None``.  Repeated functions -- the common case -- skip
        the transform search entirely.
        """
        # Imported lazily: repro.rewriting itself builds on repro.cuts.
        from ..rewriting.npn import MAX_NPN_VARS, npn_canonicalize

        if table.num_vars > MAX_NPN_VARS:
            return None
        key = (table.num_vars, table.bits)
        cached = self._npn.get(key)
        if cached is not None:
            self.npn_hits += 1
            return cached
        self.npn_misses += 1
        representative, _transform = npn_canonicalize(table)
        self._npn[key] = representative
        return representative

    # -- statistics ---------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Fraction of merge-table lookups answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def num_entries(self) -> int:
        """Number of distinct merge signatures stored."""
        return len(self._tables)

    def stats(self) -> dict[str, float]:
        """Flat numeric view for reports and benchmarks."""
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": self.hit_rate,
            "entries": float(self.num_entries),
            "npn_hits": float(self.npn_hits),
            "npn_misses": float(self.npn_misses),
        }

    def clear(self) -> None:
        """Drop all memoised tables and reset the counters."""
        self._tables.clear()
        self._npn.clear()
        self._complements.clear()
        self.hits = self.misses = 0
        self.npn_hits = self.npn_misses = 0
