"""The cut datatype and the single merge/dominance implementation.

A :class:`Cut` is a set of leaf nodes bounding a cone, optionally
carrying the cone's function over those leaves as a word-packed
:class:`~repro.truthtable.TruthTable` (leaf ``i`` = table input ``i``).
The table is *fused* into cut merging: when two fanin cuts combine, the
merged cut's table is built directly from the fanin tables (expand each
to the merged leaf set, apply the fanin complements, AND) -- no cone is
ever re-walked.  Equality and hashing ignore the table, so cuts compare
by their leaf sets exactly as before the tables existed.

:func:`merge_cut_sets` is the one merge/dominance implementation in the
tree; the static enumeration, the incremental rewriting database and the
mapper all go through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..truthtable import TruthTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from .cache import CutFunctionCache

__all__ = ["Cut", "trivial_cut", "merge_cut_sets"]

#: Table of a trivial cut ``{node}``: the identity function of one input.
_IDENTITY = TruthTable.variable(0, 1)


@dataclass(frozen=True)
class Cut:
    """A k-feasible cut: the leaf set, plus (optionally) its fused function.

    ``table`` is the function of the cut's root over ``leaves`` (leaf
    ``i`` = input ``i``); it does not participate in equality or hashing,
    so cut sets compare by leaf sets alone.
    """

    leaves: tuple[int, ...]
    table: TruthTable | None = field(default=None, compare=False)

    @property
    def size(self) -> int:
        """Number of leaves."""
        return len(self.leaves)

    def merge(self, other: "Cut") -> "Cut":
        """Union of two cuts (leaves stay sorted and deduplicated)."""
        return Cut(tuple(sorted(set(self.leaves) | set(other.leaves))))

    def dominates(self, other: "Cut") -> bool:
        """True if this cut's leaves are a subset of the other's."""
        return set(self.leaves) <= set(other.leaves)


def trivial_cut(node: int, with_table: bool = True) -> Cut:
    """The trivial cut ``{node}`` (function: identity of one input)."""
    return Cut((node,), _IDENTITY if with_table else None)


def _merge_leaves(leaves0: Sequence[int], leaves1: Sequence[int]) -> tuple[int, ...]:
    """Sorted union of two sorted leaf tuples."""
    if leaves0 == leaves1:
        return tuple(leaves0)
    return tuple(sorted(set(leaves0) | set(leaves1)))


def merge_cut_sets(
    node: int,
    fanin0: int,
    fanin1: int,
    cuts0: Sequence[Cut],
    cuts1: Sequence[Cut],
    k: int,
    cut_limit: int,
    cache: "CutFunctionCache | None" = None,
) -> list[Cut]:
    """Cut set of ``node`` from its two fanin cut sets.

    ``fanin0`` and ``fanin1`` are the fanin *literals* (complement bits
    are folded into the fused tables).  Candidates larger than ``k`` or
    dominated by an already-kept candidate are discarded; kept candidates
    are sorted by size, truncated to ``cut_limit - 1`` and the trivial
    cut ``{node}`` is appended (downstream nodes use it to treat this
    node as a leaf).

    With a :class:`~repro.cuts.cache.CutFunctionCache` the merged cut's
    truth table is computed from the fanin cut tables (never by a cone
    walk) and attached to the cut; without one, tables are skipped and
    the resulting cuts carry ``table=None``.

    Dominance runs on per-call leaf *bitmasks* (each distinct leaf of
    the two fanin sets gets one bit; subset tests become two integer
    ops).  Large cut sets -- the choice-aware engine doubles the
    priority budget and merges whole classes -- made the set-object
    subset tests the mapping hot spot; the masks cut enumeration cost
    by an order of magnitude while keeping the kept cuts, their order
    and their tables bit-identical.
    """
    comp0, comp1 = fanin0 & 1, fanin1 & 1
    # One bit per distinct leaf appearing in either fanin set.
    bit_of: dict[int, int] = {}
    for cut in cuts0:
        for leaf in cut.leaves:
            if leaf not in bit_of:
                bit_of[leaf] = 1 << len(bit_of)
    for cut in cuts1:
        for leaf in cut.leaves:
            if leaf not in bit_of:
                bit_of[leaf] = 1 << len(bit_of)
    masks0 = [sum(bit_of[leaf] for leaf in cut.leaves) for cut in cuts0]
    masks1 = [sum(bit_of[leaf] for leaf in cut.leaves) for cut in cuts1]

    merged: list[Cut] = []
    merged_masks: list[int] = []
    for index0, cut0 in enumerate(cuts0):
        mask0 = masks0[index0]
        for index1, cut1 in enumerate(cuts1):
            mask = mask0 | masks1[index1]
            if mask.bit_count() > k:
                continue
            dominated = False
            for existing in merged_masks:
                if existing & mask == existing:
                    dominated = True
                    break
            if dominated:
                continue
            survivors = [
                position
                for position, existing in enumerate(merged_masks)
                if mask & existing != mask
            ]
            if len(survivors) != len(merged):
                merged = [merged[position] for position in survivors]
                merged_masks = [merged_masks[position] for position in survivors]
            leaves = _merge_leaves(cut0.leaves, cut1.leaves)
            if cache is not None and cut0.table is not None and cut1.table is not None:
                table = cache.merge_table(cut0.table, cut0.leaves, comp0, cut1.table, cut1.leaves, comp1, leaves)
                candidate = Cut(leaves, table)
            else:
                candidate = Cut(leaves)
            merged.append(candidate)
            merged_masks.append(mask)
    merged.sort(key=lambda cut: cut.size)
    merged = merged[: cut_limit - 1]
    merged.append(trivial_cut(node, with_table=cache is not None))
    return merged
