"""Regeneration of Table I: circuit-simulation runtimes on the EPFL suite.

For every EPFL-profile benchmark the harness measures four simulation
times on the *same* random pattern set:

* ``TA`` (baseline)  -- word-parallel AIG simulation (the mockturtle fast path);
* ``TA`` (STP)       -- STP simulation of the AIG viewed as a 2-LUT network;
* ``TL`` (baseline)  -- per-pattern k-LUT simulation of the 6-LUT mapping
  (the bit-extraction path the paper observes in off-the-shelf tools);
* ``TL`` (STP)       -- STP simulation of the same 6-LUT network.

and reports the per-benchmark speedups ``x`` plus the geometric means, the
same layout as Table I.  Absolute times are Python-scale, not the paper's
C++ numbers; the quantity being reproduced is the speedup structure.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass

from ..circuits.epfl import EPFL_BENCHMARKS, epfl_benchmark
from ..networks.mapping import map_aig_to_klut
from ..rewriting.passes import PassManager
from ..simulation.bitwise import simulate_aig, simulate_klut_per_pattern
from ..simulation.patterns import PatternSet
from ..simulation.stp_simulator import StpSimulator
from .reporting import format_table, geometric_mean

__all__ = ["Table1Row", "run_table1", "format_table1", "main"]


@dataclass
class Table1Row:
    """One benchmark row of Table I."""

    benchmark: str
    num_gates: int
    num_luts: int
    ta_baseline: float
    ta_stp: float
    tl_baseline: float
    tl_stp: float

    @property
    def ta_speedup(self) -> float:
        """Speedup of the STP simulator on the AIG ("x" column under TA)."""
        return self.ta_baseline / self.ta_stp if self.ta_stp > 0 else 0.0

    @property
    def tl_speedup(self) -> float:
        """Speedup of the STP simulator on the 6-LUT network ("x" column under TL)."""
        return self.tl_baseline / self.tl_stp if self.tl_stp > 0 else 0.0


def _measure(callable_, repeats: int = 1) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def run_table1(
    benchmarks: list[str] | None = None,
    num_patterns: int = 1024,
    lut_size: int = 6,
    seed: int = 1,
    repeats: int = 1,
    pre_script: str | None = None,
) -> list[Table1Row]:
    """Measure all four simulation times for every requested benchmark.

    ``pre_script`` optionally optimizes every benchmark with a rewriting
    script before mapping and simulation; both simulators then run on
    the *same* optimized network, so the speedup comparison -- the
    quantity Table I reports -- stays apples-to-apples while exercising
    post-synthesis network shapes.
    """
    names = benchmarks if benchmarks is not None else list(EPFL_BENCHMARKS)
    manager = PassManager(pre_script, seed=seed) if pre_script else None
    rows: list[Table1Row] = []
    for name in names:
        aig = epfl_benchmark(name)
        if manager is not None:
            aig, _flow = manager.run(aig)
            aig.name = name
        patterns = PatternSet.random(aig.num_pis, num_patterns, seed)

        klut6, _ = map_aig_to_klut(aig, k=lut_size)
        klut2, _ = map_aig_to_klut(aig, k=2)
        stp6 = StpSimulator(klut6)
        stp2 = StpSimulator(klut2)

        ta_baseline = _measure(lambda: simulate_aig(aig, patterns), repeats)
        ta_stp = _measure(lambda: stp2.simulate_all(patterns), repeats)
        tl_baseline = _measure(lambda: simulate_klut_per_pattern(klut6, patterns), repeats)
        tl_stp = _measure(lambda: stp6.simulate_all(patterns), repeats)

        rows.append(
            Table1Row(
                benchmark=name,
                num_gates=aig.num_ands,
                num_luts=klut6.num_luts,
                ta_baseline=ta_baseline,
                ta_stp=ta_stp,
                tl_baseline=tl_baseline,
                tl_stp=tl_stp,
            )
        )
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    """Render the rows in the layout of Table I (plus geometric-mean summary)."""
    headers = ["Benchmark", "Gates", "6-LUTs", "TA base(s)", "TL base(s)", "TA STP(s)", "x", "TL STP(s)", "x"]
    body = [
        [
            row.benchmark,
            row.num_gates,
            row.num_luts,
            row.ta_baseline,
            row.tl_baseline,
            row.ta_stp,
            row.ta_speedup,
            row.tl_stp,
            row.tl_speedup,
        ]
        for row in rows
    ]
    geo = [
        "Geo.",
        "",
        "",
        geometric_mean([r.ta_baseline for r in rows]),
        geometric_mean([r.tl_baseline for r in rows]),
        geometric_mean([r.ta_stp for r in rows]),
        geometric_mean([r.ta_speedup for r in rows]),
        geometric_mean([r.tl_stp for r in rows]),
        geometric_mean([r.tl_speedup for r in rows]),
    ]
    body.append(geo)
    table = format_table(headers, body, title="Table I -- circuit simulation on the EPFL suite")
    ta_improvement = geometric_mean([r.ta_speedup for r in rows])
    tl_improvement = geometric_mean([r.tl_speedup for r in rows])
    summary = (
        f"\nImp. (geom. mean speedup, baseline/STP): TA {ta_improvement:.2f}x, TL {tl_improvement:.2f}x\n"
        f"Paper reports: TA ~1.0x, TL 7.18x (22.04x maximum)."
    )
    return table + summary


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point (``repro-table1``)."""
    parser = argparse.ArgumentParser(description="Regenerate Table I (EPFL simulation comparison)")
    parser.add_argument("--benchmarks", nargs="*", default=None, help="benchmark names (default: all twenty)")
    parser.add_argument("--patterns", type=int, default=1024, help="number of random simulation patterns")
    parser.add_argument("--lut-size", type=int, default=6, help="LUT size for the TL comparison")
    parser.add_argument("--seed", type=int, default=1, help="random pattern seed")
    parser.add_argument("--repeats", type=int, default=1, help="timing repetitions (best of N)")
    parser.add_argument(
        "--pre-script",
        default=None,
        help="optimization script run on every benchmark before mapping (e.g. 'rw', 'resyn2')",
    )
    arguments = parser.parse_args(argv)
    rows = run_table1(
        benchmarks=arguments.benchmarks,
        num_patterns=arguments.patterns,
        lut_size=arguments.lut_size,
        seed=arguments.seed,
        repeats=arguments.repeats,
        pre_script=arguments.pre_script,
    )
    print(format_table1(rows))
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(main())
