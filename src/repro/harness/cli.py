"""Command-line front-ends for working with circuit files directly.

Besides the table-regeneration entry points (``repro-table1`` and
``repro-table2``), the package installs two file-level tools:

* ``repro-simulate`` -- read an AIGER/BENCH file, map it to k-LUTs and
  simulate it with a chosen engine, printing per-output signatures or
  writing them to a CSV file;
* ``repro-sweep`` -- read an AIGER/BENCH file, run one of the two SAT
  sweepers on it, verify the result and write it back out in any of the
  supported formats;
* ``repro-optimize`` -- read a circuit file, run an optimization script
  (``"rw; fraig; rw; fraig"``, ``"resyn2"``, or a mapped-network flow
  like ``"map; lutmffc; cleanup"``) through the network-generic
  :class:`repro.rewriting.PassManager`, print per-pass statistics,
  verify the result and write it out (a flow ending in a k-LUT network
  writes BLIF);
* ``repro-map`` -- read a circuit file, run the multi-pass k-LUT mapper
  (depth, then area-flow and exact-area recovery; with ``--choices`` a
  ``dch``-style choice computation runs first and the mapper selects
  among the recorded structures), report LUT count / depth / edge count
  / cut-cache hit rate, verify the mapping against the source AIG by
  word-parallel simulation and write BLIF.

The combined entry point additionally exposes the synthesis service:
``repro serve`` runs the persistent optimization server
(:mod:`repro.service`) and ``repro submit`` sends a circuit file to it,
streaming per-pass progress and exiting with the same code scheme as the
local tools.  ``optimize`` / ``sweep`` / ``map`` accept ``--stats-json
PATH`` to write the run's ``FlowStatistics.as_dict()`` serialization --
the exact format the server streams -- to a file.

All tools work purely on files, so they can be dropped into existing
shell-based synthesis flows the way ``abc`` commands are; :func:`main`
additionally exposes them as subcommands of one ``repro`` entry point
(``repro optimize circuit.aag --script resyn2``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from ..io import (
    ParseError,
    read_aiger_file,
    read_bench_file,
    write_aiger_file,
    write_bench_file,
    write_blif_file,
    write_verilog_file,
)
from ..networks import Aig, KLutNetwork, map_aig_to_klut, network_statistics, technology_map
from ..resilience import Budget, BudgetExceeded
from ..simulation import (
    PatternSet,
    klut_po_signatures,
    aig_po_signatures,
    simulate_aig,
    simulate_klut_per_pattern,
    simulate_klut_stp,
)
from ..rewriting import FlowStatistics, NAMED_SCRIPTS, PassManager, PassStatistics
from ..sweeping import FraigSweeper, StpSweeper, check_combinational_equivalence

__all__ = [
    "simulate_main",
    "sweep_main",
    "optimize_main",
    "map_main",
    "main",
    "read_network",
    "write_network",
]

# Exit codes shared by all file tools:
#   0 -- success
#   1 -- verification failure (result not written)
#   2 -- usage, parse or I/O error
#   3 -- at least one pass failed and was rolled back (--on-error rollback)
#   4 -- aborted by a --timeout budget
EXIT_OK = 0
EXIT_VERIFY_FAILED = 1
EXIT_USAGE = 2
EXIT_PASS_FAILED = 3
EXIT_BUDGET = 4


def read_network(path: str) -> Aig:
    """Read an AIG from an AIGER (.aag/.aig) or BENCH (.bench) file."""
    extension = os.path.splitext(path)[1].lower()
    if extension in (".aag", ".aig"):
        return read_aiger_file(path)
    if extension == ".bench":
        return read_bench_file(path)
    raise ValueError(f"unsupported input format {extension!r} (expected .aag, .aig or .bench)")


def _load_network(path: str) -> Aig | None:
    """Read an input circuit, printing a clean diagnostic on failure."""
    try:
        return read_network(path)
    except ParseError as error:
        print(f"parse error: {error}", file=sys.stderr)
        return None
    except (ValueError, OSError) as error:
        print(str(error), file=sys.stderr)
        return None


def write_network(aig: Aig, path: str, lut_size: int = 6) -> None:
    """Write an AIG to AIGER, BENCH, BLIF (via LUT mapping) or Verilog."""
    extension = os.path.splitext(path)[1].lower()
    if extension in (".aag", ".aig"):
        write_aiger_file(aig, path)
    elif extension == ".bench":
        write_bench_file(aig, path)
    elif extension == ".blif":
        klut, _ = map_aig_to_klut(aig, k=lut_size)
        write_blif_file(klut, path)
    elif extension == ".v":
        write_verilog_file(aig, path)
    else:
        raise ValueError(f"unsupported output format {extension!r} (expected .aag, .aig, .bench, .blif or .v)")


def _write_stats_json(path: str, flow: FlowStatistics) -> bool:
    """Write a flow's ``as_dict()`` serialization to ``path``.

    One format serves both front ends: this is byte-for-byte the object
    the synthesis service's ``done`` events carry under ``"flow"``.
    Returns ``False`` (after printing a diagnostic) when the file cannot
    be written.
    """
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(flow.as_dict(), handle, indent=2)
            handle.write("\n")
    except OSError as error:
        print(str(error), file=sys.stderr)
        return False
    print(f"wrote {path}")
    return True


# ---------------------------------------------------------------------------
# repro-simulate
# ---------------------------------------------------------------------------


def simulate_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-simulate``."""
    parser = argparse.ArgumentParser(
        prog="repro-simulate",
        description="Simulate an AIGER/BENCH circuit with the baseline or the STP simulator",
    )
    parser.add_argument("input", help="input circuit (.aag, .aig or .bench)")
    parser.add_argument("--patterns", type=int, default=256, help="number of random patterns")
    parser.add_argument("--seed", type=int, default=1, help="pattern seed")
    parser.add_argument(
        "--engine",
        choices=["aig", "lut", "stp"],
        default="stp",
        help="aig = word-parallel AIG, lut = per-pattern k-LUT, stp = STP simulator",
    )
    parser.add_argument("--lut-size", type=int, default=6, help="LUT size for the lut/stp engines")
    parser.add_argument("--csv", default=None, help="write per-output signatures to this CSV file")
    arguments = parser.parse_args(argv)

    if arguments.patterns < 1:
        print(f"--patterns must be >= 1, got {arguments.patterns}", file=sys.stderr)
        return EXIT_USAGE
    aig = _load_network(arguments.input)
    if aig is None:
        return EXIT_USAGE
    stats = network_statistics(aig)
    print(f"{os.path.basename(arguments.input)}: {stats}")
    patterns = PatternSet.random(aig.num_pis, arguments.patterns, arguments.seed)

    try:
        if arguments.engine == "aig":
            result = simulate_aig(aig, patterns)
            signatures = aig_po_signatures(aig, result)
        else:
            klut, _ = map_aig_to_klut(aig, k=arguments.lut_size)
            if arguments.engine == "lut":
                result = simulate_klut_per_pattern(klut, patterns)
            else:
                result = simulate_klut_stp(klut, patterns)
            signatures = klut_po_signatures(klut, result)
    except ValueError as error:
        # e.g. an unmappable --lut-size: a usage error, not a crash.
        print(str(error), file=sys.stderr)
        return EXIT_USAGE

    width = max((len(name) for name in aig.po_names), default=4)
    print(f"simulated {patterns.num_patterns} patterns with engine {arguments.engine!r}")
    rows = []
    for name, signature in zip(aig.po_names, signatures):
        ones = bin(signature).count("1")
        rows.append((name, ones, signature))
        print(f"  {name:{width}}  ones={ones:6d}/{patterns.num_patterns}  signature=0x{signature:x}")
    if arguments.csv:
        try:
            with open(arguments.csv, "w", encoding="ascii") as handle:
                handle.write("output,ones,patterns,signature_hex\n")
                for name, ones, signature in rows:
                    handle.write(f"{name},{ones},{patterns.num_patterns},{signature:x}\n")
        except OSError as error:
            print(str(error), file=sys.stderr)
            return EXIT_USAGE
        print(f"wrote {arguments.csv}")
    return EXIT_OK


# ---------------------------------------------------------------------------
# repro-sweep
# ---------------------------------------------------------------------------


def sweep_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-sweep``."""
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description="SAT-sweep an AIGER/BENCH circuit with the baseline or the STP engine",
    )
    parser.add_argument("input", help="input circuit (.aag, .aig or .bench)")
    parser.add_argument("--output", "-o", default=None, help="write the swept circuit here (.aag/.aig/.bench/.blif/.v)")
    parser.add_argument("--engine", choices=["fraig", "stp"], default="stp", help="sweeping engine")
    parser.add_argument("--patterns", type=int, default=64, help="initial pattern count")
    parser.add_argument("--conflict-limit", type=int, default=10_000, help="SAT conflict limit per query")
    parser.add_argument("--tfi-limit", type=int, default=1000, help="TFI candidate bound")
    parser.add_argument("--window-leaves", type=int, default=16, help="exhaustive window bound (stp engine)")
    parser.add_argument("--seed", type=int, default=1, help="random seed")
    parser.add_argument("--no-verify", action="store_true", help="skip the CEC verification")
    parser.add_argument(
        "--timeout", type=float, default=None, help="wall-clock budget in seconds (exit 4 when exceeded)"
    )
    parser.add_argument(
        "--stats-json", default=None, help="write the run's flow statistics as JSON to this file"
    )
    arguments = parser.parse_args(argv)

    aig = _load_network(arguments.input)
    if aig is None:
        return EXIT_USAGE
    print(f"{os.path.basename(arguments.input)}: {network_statistics(aig)}")

    budget = Budget(wall_clock=arguments.timeout) if arguments.timeout is not None else None
    if arguments.engine == "fraig":
        sweeper = FraigSweeper(
            aig,
            num_patterns=arguments.patterns,
            seed=arguments.seed,
            conflict_limit=arguments.conflict_limit,
            tfi_limit=arguments.tfi_limit,
            budget=budget,
        )
    else:
        sweeper = StpSweeper(
            aig,
            num_patterns=arguments.patterns,
            seed=arguments.seed,
            conflict_limit=arguments.conflict_limit,
            tfi_limit=arguments.tfi_limit,
            window_leaves=arguments.window_leaves,
            budget=budget,
        )
    try:
        swept, stats = sweeper.run()
    except BudgetExceeded as error:
        print(f"aborted: {error}", file=sys.stderr)
        return EXIT_BUDGET
    print(stats)

    verified: bool | None = None
    if not arguments.no_verify:
        verdict = check_combinational_equivalence(aig, swept)
        print(f"equivalence check: {verdict.status}")
        verified = bool(verdict)

    if arguments.stats_json:
        flow = FlowStatistics(
            script=arguments.engine,
            gates_before=stats.gates_before,
            gates_after=stats.gates_after,
            depth_before=aig.depth(),
            depth_after=swept.depth(),
            total_time=stats.total_time,
            verified=verified,
        )
        flow.passes.append(
            PassStatistics(
                name=arguments.engine,
                gates_before=stats.gates_before,
                gates_after=stats.gates_after,
                depth_before=flow.depth_before,
                depth_after=flow.depth_after,
                total_time=stats.total_time,
                verified=verified,
                details={
                    "merges": float(stats.merges),
                    "constant_merges": float(stats.constant_merges),
                    "total_sat_calls": float(stats.total_sat_calls),
                    "satisfiable_sat_calls": float(stats.satisfiable_sat_calls),
                    "sat_time": stats.sat_time,
                    "simulation_time": stats.simulation_time,
                    "patterns_used": float(stats.patterns_used),
                },
            )
        )
        if not _write_stats_json(arguments.stats_json, flow):
            return EXIT_USAGE

    if verified is False:
        print("refusing to write a non-equivalent result", file=sys.stderr)
        return EXIT_VERIFY_FAILED
    if arguments.output:
        write_network(swept, arguments.output)
        print(f"wrote {arguments.output}")
    return EXIT_OK


# ---------------------------------------------------------------------------
# repro-optimize
# ---------------------------------------------------------------------------


def _print_sat_profile(flow: FlowStatistics) -> None:
    """Per-pass SAT breakdown of a flow (the ``--sat-profile`` report).

    Only passes that ran SAT queries appear; the counters come from the
    ``sat_``-prefixed details every sweeping pass reports (the CDCL
    core's :class:`~repro.sat.cdcl.SolverStatistics` aggregated over all
    solver windows of the pass).
    """
    rows = []
    totals = {"calls": 0.0, "conflicts": 0.0, "propagations": 0.0, "reused": 0.0, "time": 0.0}
    for stats in flow.passes:
        details = stats.details
        calls = float(details.get("sat_calls") or details.get("sat_solve_calls") or 0.0)
        if calls <= 0:
            continue
        conflicts = float(details.get("sat_conflicts", 0.0))
        propagations = float(details.get("sat_propagations", 0.0))
        restarts = float(details.get("sat_restarts", 0.0))
        windows = float(details.get("sat_windows_opened", 0.0))
        reused = float(details.get("sat_window_reuses", 0.0))
        reuse_rate = float(details.get("sat_window_reuse_rate", 0.0))
        sat_time = float(details.get("sat_time", 0.0))
        rows.append(
            f"  {stats.name:<8} calls {int(calls):>6}  conflicts {int(conflicts):>8}  "
            f"props {int(propagations):>10}  restarts {int(restarts):>4}  "
            f"windows {int(windows):>3}  reuse {reuse_rate:6.1%}  sat {sat_time:7.3f}s"
        )
        totals["calls"] += calls
        totals["conflicts"] += conflicts
        totals["propagations"] += propagations
        totals["reused"] += reused
        totals["time"] += sat_time
    print("SAT profile:")
    if not rows:
        print("  no SAT-backed passes ran")
        return
    for row in rows:
        print(row)
    overall_rate = totals["reused"] / totals["calls"] if totals["calls"] else 0.0
    print(
        f"  {'total':<8} calls {int(totals['calls']):>6}  conflicts {int(totals['conflicts']):>8}  "
        f"props {int(totals['propagations']):>10}  reused-solver hit rate {overall_rate:6.1%}  "
        f"sat {totals['time']:7.3f}s"
    )


def _parse_jobs(value: str) -> int:
    """``--jobs`` argument type: a positive integer or ``auto``.

    ``auto`` resolves to the machine's CPU count right here, so the
    wrapped ``ppart(..., jobs=N)`` token -- and every surface echoing it
    (the printed script, ``--stats-json``'s ``ppart_jobs`` detail) --
    always shows the concrete worker count that actually ran.
    """
    if value.strip().lower() == "auto":
        return os.cpu_count() or 1
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None


def optimize_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-optimize``."""
    parser = argparse.ArgumentParser(
        prog="repro-optimize",
        description="Optimize an AIGER/BENCH circuit with a rewriting/sweeping/mapping script",
        epilog=(
            "Scripts are semicolon-separated pass names (rw, rwz, rf, rfz, b, fraig, "
            "stp, cp, map, lutmffc, lutmffcz, cleanup) or named flows: "
            + ", ".join(sorted(NAMED_SCRIPTS))
            + ".  Flows ending behind 'map' produce a k-LUT network and write BLIF.  "
            "--jobs N partitions the network and runs the leading AIG passes across N "
            "worker processes (equivalent to wrapping them in a ppart(..., jobs=N) "
            "meta-pass in the script)."
        ),
    )
    parser.add_argument("input", help="input circuit (.aag, .aig or .bench)")
    parser.add_argument("--output", "-o", default=None, help="write the optimized circuit here (.aag/.aig/.bench/.blif/.v)")
    parser.add_argument("--script", default="resyn2", help="optimization script (default: resyn2)")
    parser.add_argument("--patterns", type=int, default=64, help="pattern count for the SAT-based passes")
    parser.add_argument("--lut-size", "-k", type=int, default=6, help="LUT size for the map/lutmffc passes")
    parser.add_argument("--conflict-limit", type=int, default=10_000, help="SAT conflict limit per query")
    parser.add_argument("--seed", type=int, default=1, help="random seed")
    parser.add_argument("--verify-each", action="store_true", help="CEC-check after every pass (slow)")
    parser.add_argument("--no-verify", action="store_true", help="skip the final CEC verification")
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="wall-clock budget in seconds for the whole flow (exit 4 when exceeded under --on-error raise)",
    )
    parser.add_argument(
        "--pass-timeout", type=float, default=None, help="wall-clock budget in seconds per pass"
    )
    parser.add_argument(
        "--on-error", choices=["raise", "rollback"], default="raise",
        help="on a failing pass: abort (raise) or roll the pass back and continue (rollback)",
    )
    parser.add_argument(
        "--verify-commit", action="store_true",
        help="simulation cross-check every pass before committing it (rolls back on mismatch)",
    )
    parser.add_argument(
        "--stats-json", default=None, help="write the flow statistics as JSON to this file"
    )
    parser.add_argument(
        "--sat-profile",
        action="store_true",
        help="print a per-pass SAT breakdown (calls, conflicts, solver-window reuse)",
    )
    parser.add_argument(
        "--jobs", "-j", type=_parse_jobs, default=None,
        help=(
            "partition the network and run the leading AIG passes across N worker "
            "processes; 'auto' uses every CPU the machine reports"
        ),
    )
    parser.add_argument(
        "--partition-max-gates", type=int, default=400,
        help="gate-count cap per partition region (with --jobs; default: 400)",
    )
    parser.add_argument(
        "--partition-strategy", choices=["window", "level"], default="window",
        help="partition decomposition strategy (with --jobs; default: window)",
    )
    parser.add_argument(
        "--partition-merge", choices=["substitute", "choice"], default="substitute",
        help="merge-back mode: substitute boundary cones or record them as choices (with --jobs)",
    )
    parser.add_argument(
        "--partition-window", type=int, default=None,
        help="per-region SAT solver window inside each worker (with --jobs)",
    )
    parser.add_argument(
        "--partition-batch-bytes", type=int, default=None,
        help=(
            "wire-batch byte budget: regions are packed into worker batches of "
            "roughly this size; 0 dispatches one region per job (with --jobs)"
        ),
    )
    arguments = parser.parse_args(argv)

    aig = _load_network(arguments.input)
    if aig is None:
        return EXIT_USAGE
    print(f"{os.path.basename(arguments.input)}: {network_statistics(aig)}")

    script = arguments.script
    if arguments.jobs is not None:
        from ..partition import wrap_script_with_jobs

        try:
            script, wrapped = wrap_script_with_jobs(
                script,
                arguments.jobs,
                max_gates=arguments.partition_max_gates,
                strategy=arguments.partition_strategy,
                merge=arguments.partition_merge,
                window=arguments.partition_window,
                batch=arguments.partition_batch_bytes,
            )
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return EXIT_USAGE
        if wrapped:
            print(f"partition-parallel script: {script}")
    try:
        manager = PassManager(
            script,
            seed=arguments.seed,
            num_patterns=arguments.patterns,
            conflict_limit=arguments.conflict_limit,
            lut_size=arguments.lut_size,
            verify_each=arguments.verify_each,
            on_error=arguments.on_error,
            verify_commit=arguments.verify_commit,
            pass_timeout=arguments.pass_timeout,
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return EXIT_USAGE
    budget = Budget(wall_clock=arguments.timeout) if arguments.timeout is not None else None
    try:
        optimized, flow = manager.run(aig, verify=not arguments.no_verify, budget=budget)
    except BudgetExceeded as error:
        print(f"aborted: {error}", file=sys.stderr)
        return EXIT_BUDGET
    print(flow)
    for stats in flow.passes:
        if stats.partitions is None:
            continue
        details = stats.details
        print(
            f"  partitions: {int(details.get('ppart_regions_built', 0))} built, "
            f"{int(details.get('ppart_regions_merged', 0))} merged, "
            f"{int(details.get('ppart_regions_rolled_back', 0))} rolled back, "
            f"{int(details.get('ppart_regions_skipped', 0))} skipped, "
            f"{int(details.get('ppart_worker_restarts', 0))} worker restarts"
        )
    if arguments.sat_profile:
        _print_sat_profile(flow)

    if arguments.stats_json and not _write_stats_json(arguments.stats_json, flow):
        return EXIT_USAGE
    if flow.verified is False:
        print("refusing to write a non-equivalent result", file=sys.stderr)
        return EXIT_VERIFY_FAILED
    if arguments.output:
        if isinstance(optimized, KLutNetwork):
            extension = os.path.splitext(arguments.output)[1].lower()
            if extension != ".blif":
                print(
                    f"script produced a k-LUT network; unsupported output format "
                    f"{extension!r} (expected .blif)",
                    file=sys.stderr,
                )
                return EXIT_USAGE
            write_blif_file(optimized, arguments.output)
        else:
            write_network(optimized, arguments.output, lut_size=arguments.lut_size)
        print(f"wrote {arguments.output}")
    if flow.failed_passes:
        names = ", ".join(stats.name for stats in flow.failed_passes)
        print(f"warning: rolled-back passes: {names}", file=sys.stderr)
        return EXIT_PASS_FAILED
    return EXIT_OK


# ---------------------------------------------------------------------------
# repro-map
# ---------------------------------------------------------------------------


def map_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-map``."""
    parser = argparse.ArgumentParser(
        prog="repro-map",
        description="Map an AIGER/BENCH circuit to k-LUTs with the multi-pass mapper",
    )
    parser.add_argument("input", help="input circuit (.aag, .aig or .bench)")
    parser.add_argument("--output", "-o", default=None, help="write the mapped network here (.blif)")
    parser.add_argument("--lut-size", "-k", type=int, default=6, help="LUT size k (default: 6)")
    parser.add_argument("--cut-limit", type=int, default=8, help="priority cuts kept per node")
    parser.add_argument(
        "--area-rounds",
        type=int,
        default=2,
        help="area-recovery effort: 0 = depth only, 1 = +area flow, 2 = +exact area (default)",
    )
    parser.add_argument("--patterns", type=int, default=256, help="verification pattern count")
    parser.add_argument("--seed", type=int, default=1, help="verification pattern seed")
    parser.add_argument("--no-verify", action="store_true", help="skip the simulation cross-check")
    parser.add_argument(
        "--choices",
        action="store_true",
        help="compute structural choices (dch-style) first and map choice-aware",
    )
    parser.add_argument("--conflict-limit", type=int, default=10_000, help="SAT conflict limit of --choices")
    parser.add_argument(
        "--timeout", type=float, default=None, help="wall-clock budget in seconds (exit 4 when exceeded)"
    )
    parser.add_argument(
        "--stats-json", default=None, help="write the mapping statistics as JSON to this file"
    )
    arguments = parser.parse_args(argv)

    aig = _load_network(arguments.input)
    if aig is None:
        return EXIT_USAGE
    print(f"{os.path.basename(arguments.input)}: {network_statistics(aig)}")
    budget = Budget(wall_clock=arguments.timeout) if arguments.timeout is not None else None
    subject = aig
    if arguments.choices:
        from ..rewriting import compute_choices

        try:
            subject, choice_report = compute_choices(
                aig, seed=arguments.seed, conflict_limit=arguments.conflict_limit, budget=budget
            )
        except BudgetExceeded as error:
            print(f"aborted: {error}", file=sys.stderr)
            return EXIT_BUDGET
        print(
            f"choices: {choice_report.choice_classes} classes, "
            f"{choice_report.choice_alternatives} alternatives "
            f"(rw {choice_report.rewrite_recorded} / rf {choice_report.refactor_recorded} / "
            f"fraig {choice_report.fraig_recorded}), {choice_report.total_time:.3f}s"
        )
    map_start = time.perf_counter()
    try:
        result = technology_map(
            subject,
            k=arguments.lut_size,
            cut_limit=arguments.cut_limit,
            area_rounds=arguments.area_rounds,
            budget=budget,
        )
    except BudgetExceeded as error:
        print(f"aborted: {error}", file=sys.stderr)
        return EXIT_BUDGET
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return EXIT_USAGE
    map_time = time.perf_counter() - map_start
    stats = result.stats
    print(stats)
    print(
        f"  passes: depth {stats.depth_pass_luts or stats.num_luts} LUTs"
        + (f" -> area-flow {stats.area_flow_luts} LUTs" if stats.area_flow_luts else "")
        + (f" -> exact-area {stats.exact_area_luts} LUTs" if stats.exact_area_luts else "")
    )
    print(
        f"  cut cache: {stats.cache_hits} hits / {stats.cache_misses} misses "
        f"({stats.cache_hit_rate:.1%} hit rate, {stats.cuts_enumerated} cuts enumerated)"
    )

    verified: bool | None = None
    if not arguments.no_verify:
        patterns = PatternSet.random(aig.num_pis, arguments.patterns, arguments.seed)
        aig_signatures = aig_po_signatures(aig, simulate_aig(aig, patterns))
        klut_signatures = klut_po_signatures(
            result.network, simulate_klut_per_pattern(result.network, patterns)
        )
        verified = aig_signatures == klut_signatures
        if verified:
            print(f"verification: {patterns.num_patterns} word-parallel patterns agree on all outputs")

    if arguments.stats_json:
        flow = FlowStatistics(
            script="map",
            gates_before=aig.num_gates,
            gates_after=stats.num_luts,
            depth_before=aig.depth(),
            depth_after=stats.depth,
            total_time=map_time,
            verified=verified,
            kind_after="klut",
        )
        flow.passes.append(
            PassStatistics(
                name="map",
                gates_before=flow.gates_before,
                gates_after=flow.gates_after,
                depth_before=flow.depth_before,
                depth_after=flow.depth_after,
                total_time=map_time,
                verified=verified,
                kind="klut",
                details=stats.as_details(),
            )
        )
        if not _write_stats_json(arguments.stats_json, flow):
            return EXIT_USAGE

    if verified is False:
        print("mapping verification FAILED: signatures differ", file=sys.stderr)
        return EXIT_VERIFY_FAILED

    if arguments.output:
        extension = os.path.splitext(arguments.output)[1].lower()
        if extension != ".blif":
            print(f"unsupported mapping output format {extension!r} (expected .blif)", file=sys.stderr)
            return EXIT_USAGE
        write_blif_file(result.network, arguments.output)
        print(f"wrote {arguments.output}")
    return EXIT_OK


# ---------------------------------------------------------------------------
# the combined `repro` entry point
# ---------------------------------------------------------------------------

#: Subcommand table of the combined entry point.  Table harnesses are
#: imported lazily to keep plain file-tool invocations fast.
_SUBCOMMANDS = {
    "simulate": "repro-simulate: simulate a circuit file",
    "sweep": "repro-sweep: SAT-sweep a circuit file",
    "optimize": "repro-optimize: run an optimization script on a circuit file",
    "map": "repro-map: map a circuit file to k-LUTs and write BLIF",
    "serve": "repro-serve: run the persistent synthesis service",
    "submit": "repro-submit: submit a circuit to a running service",
    "table1": "regenerate Table I (simulation comparison)",
    "table2": "regenerate Table II (sweeper comparison)",
}


def main(argv: list[str] | None = None) -> int:
    """Combined ``repro <subcommand>`` entry point."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if not arguments or arguments[0] in ("-h", "--help"):
        print("usage: repro <subcommand> [options]\n\nsubcommands:")
        for name, description in _SUBCOMMANDS.items():
            print(f"  {name:<10} {description}")
        return 0 if arguments else 2
    command, rest = arguments[0], arguments[1:]
    if command == "simulate":
        return simulate_main(rest)
    if command == "sweep":
        return sweep_main(rest)
    if command == "optimize":
        return optimize_main(rest)
    if command == "map":
        return map_main(rest)
    if command == "serve":
        from ..service.cli import serve_main

        return serve_main(rest)
    if command == "submit":
        from ..service.cli import submit_main

        return submit_main(rest)
    if command == "table1":
        from .table1 import main as table1_main

        return table1_main(rest)
    if command == "table2":
        from .table2 import main as table2_main

        return table2_main(rest)
    print(f"unknown subcommand {command!r}; known: {', '.join(_SUBCOMMANDS)}", file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(main())
