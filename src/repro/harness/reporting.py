"""Reporting helpers shared by the experiment harnesses.

The paper summarises each table with geometric means and "average
geometric mean improvement" rows; these helpers compute the same
aggregates and render plain-text tables and CSV files.
"""

from __future__ import annotations

import csv
import io
import math
from typing import Mapping, Sequence

__all__ = ["geometric_mean", "improvement", "format_table", "rows_to_csv"]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values; zeros are clamped to a tiny epsilon."""
    cleaned = [max(float(v), 1e-12) for v in values]
    if not cleaned:
        return 0.0
    return math.exp(sum(math.log(v) for v in cleaned) / len(cleaned))


def improvement(old: float, new: float) -> float:
    """Ratio ``new / old`` (the paper's "Imp." rows, new over old)."""
    if old <= 0:
        return 0.0
    return new / old


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None) -> str:
    """Render a fixed-width plain-text table."""
    columns = len(headers)
    normalised_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in normalised_rows:
        for index in range(min(columns, len(row))):
            widths[index] = max(widths[index], len(row[index]))
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in normalised_rows:
        padded = row + [""] * (columns - len(row))
        lines.append(" | ".join(value.ljust(w) for value, w in zip(padded, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def rows_to_csv(rows: Sequence[Mapping[str, object]]) -> str:
    """Serialise a list of uniform dictionaries to CSV text."""
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()
