"""Experiment harnesses that regenerate the paper's tables.

``repro-table1`` / :mod:`repro.harness.table1` regenerates the simulator
comparison (Table I) and ``repro-table2`` / :mod:`repro.harness.table2`
the SAT-sweeper comparison (Table II).  Both are also exercised, at small
pattern counts, by the pytest-benchmark targets under ``benchmarks/``.
"""

from .cli import main, optimize_main, read_network, simulate_main, sweep_main, write_network
from .reporting import format_table, geometric_mean, improvement, rows_to_csv
from .table1 import Table1Row, format_table1, run_table1
from .table2 import Table2Row, format_table2, run_single_comparison, run_table2

__all__ = [
    "read_network",
    "write_network",
    "main",
    "simulate_main",
    "sweep_main",
    "optimize_main",
    "format_table",
    "geometric_mean",
    "improvement",
    "rows_to_csv",
    "Table1Row",
    "format_table1",
    "run_table1",
    "Table2Row",
    "format_table2",
    "run_single_comparison",
    "run_table2",
]
