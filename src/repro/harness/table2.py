"""Regeneration of Table II: the baseline FRAIG sweeper vs the STP sweeper.

For every workload the harness runs both sweepers on the *same* input
network, verifies each result against the original with the combinational
equivalence checker, and reports the Table II columns: network statistics,
satisfiable SAT calls, total SAT calls, simulation runtime and total
runtime for both engines, plus the per-row runtime ratio ``x`` and the
geometric-mean summary ("Imp.") rows.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from ..circuits.sweep_workloads import SWEEP_WORKLOADS, sweep_workload
from ..networks.aig import Aig
from ..rewriting.passes import PassManager
from ..sweeping.cec import check_combinational_equivalence
from ..sweeping.fraig import FraigSweeper
from ..sweeping.stats import SweepStatistics
from ..sweeping.stp_sweeper import StpSweeper
from .reporting import format_table, geometric_mean

__all__ = ["Table2Row", "run_table2", "format_table2", "main"]


@dataclass
class Table2Row:
    """One workload row of Table II."""

    benchmark: str
    baseline: SweepStatistics
    stp: SweepStatistics
    baseline_verified: bool
    stp_verified: bool

    @property
    def runtime_ratio(self) -> float:
        """Total-runtime ratio STP / baseline (the "x" column)."""
        if self.baseline.total_time <= 0:
            return 0.0
        return self.stp.total_time / self.baseline.total_time


def run_table2(
    workloads: list[str] | None = None,
    num_patterns: int = 64,
    conflict_limit: int | None = 10_000,
    tfi_limit: int = 1000,
    window_leaves: int = 16,
    verify: bool = True,
    seed: int = 1,
    pre_script: str | None = None,
) -> list[Table2Row]:
    """Run both sweepers on every requested workload.

    ``pre_script`` optionally pre-optimizes every workload with a
    rewriting script (e.g. ``"rw"`` or ``"resyn2"``) before the two
    sweepers run on it -- the way real flows feed ``resyn2``-optimized
    networks into fraiging.  Both engines then sweep the *same*
    pre-optimized network, so the comparison stays apples-to-apples.
    """
    names = workloads if workloads is not None else list(SWEEP_WORKLOADS)
    rows: list[Table2Row] = []
    for name in names:
        network = sweep_workload(name)
        rows.append(
            run_single_comparison(
                network,
                num_patterns=num_patterns,
                conflict_limit=conflict_limit,
                tfi_limit=tfi_limit,
                window_leaves=window_leaves,
                verify=verify,
                seed=seed,
                pre_script=pre_script,
            )
        )
    return rows


def run_single_comparison(
    network: Aig,
    num_patterns: int = 64,
    conflict_limit: int | None = 10_000,
    tfi_limit: int = 1000,
    window_leaves: int = 16,
    verify: bool = True,
    seed: int = 1,
    pre_script: str | None = None,
) -> Table2Row:
    """Run the baseline and the STP sweeper on one network.

    With ``pre_script`` the network is first optimized by the rewriting
    pipeline (and, when ``verify`` is set, the pre-pass output is
    CEC-checked against the original before any sweeping happens).
    """
    if pre_script:
        original = network
        manager = PassManager(
            pre_script,
            seed=seed,
            num_patterns=num_patterns,
            conflict_limit=conflict_limit,
        )
        network, _flow = manager.run(network, verify=False)
        network.name = original.name
        if verify and not check_combinational_equivalence(original, network):
            raise RuntimeError(
                f"pre-pass script {pre_script!r} broke equivalence on {original.name}"
            )
    baseline_engine = FraigSweeper(
        network,
        num_patterns=num_patterns,
        seed=seed,
        conflict_limit=conflict_limit,
        tfi_limit=tfi_limit,
    )
    baseline_result, baseline_stats = baseline_engine.run()

    stp_engine = StpSweeper(
        network,
        num_patterns=num_patterns,
        seed=seed,
        conflict_limit=conflict_limit,
        tfi_limit=tfi_limit,
        window_leaves=window_leaves,
    )
    stp_result, stp_stats = stp_engine.run()

    baseline_verified = True
    stp_verified = True
    if verify:
        baseline_verified = bool(check_combinational_equivalence(network, baseline_result))
        stp_verified = bool(check_combinational_equivalence(network, stp_result))
    return Table2Row(
        benchmark=network.name,
        baseline=baseline_stats,
        stp=stp_stats,
        baseline_verified=baseline_verified,
        stp_verified=stp_verified,
    )


def format_table2(rows: list[Table2Row]) -> str:
    """Render the rows in the layout of Table II (plus geometric-mean summary)."""
    headers = [
        "Benchmark",
        "PI/PO",
        "Lev",
        "Gate",
        "Result",
        "SAT &fraig",
        "SAT STP",
        "Total &fraig",
        "Total STP",
        "Sim &fraig(s)",
        "Sim STP(s)",
        "Time &fraig(s)",
        "Time STP(s)",
        "x",
        "CEC",
    ]
    body = []
    for row in rows:
        body.append(
            [
                row.benchmark,
                f"{row.baseline.num_pis}/{row.baseline.num_pos}",
                row.baseline.depth,
                row.baseline.gates_before,
                row.stp.gates_after,
                row.baseline.satisfiable_sat_calls,
                row.stp.satisfiable_sat_calls,
                row.baseline.total_sat_calls,
                row.stp.total_sat_calls,
                row.baseline.simulation_time,
                row.stp.simulation_time,
                row.baseline.total_time,
                row.stp.total_time,
                row.runtime_ratio,
                "ok" if (row.baseline_verified and row.stp_verified) else "FAIL",
            ]
        )
    geo = [
        "Geo.",
        "",
        "",
        geometric_mean([r.baseline.gates_before for r in rows]),
        geometric_mean([r.stp.gates_after for r in rows]),
        geometric_mean([r.baseline.satisfiable_sat_calls or 1 for r in rows]),
        geometric_mean([r.stp.satisfiable_sat_calls or 1 for r in rows]),
        geometric_mean([r.baseline.total_sat_calls or 1 for r in rows]),
        geometric_mean([r.stp.total_sat_calls or 1 for r in rows]),
        geometric_mean([r.baseline.simulation_time for r in rows]),
        geometric_mean([r.stp.simulation_time for r in rows]),
        geometric_mean([r.baseline.total_time for r in rows]),
        geometric_mean([r.stp.total_time for r in rows]),
        geometric_mean([r.runtime_ratio for r in rows]),
        "",
    ]
    body.append(geo)
    table = format_table(headers, body, title="Table II -- SAT sweeper comparison (&fraig baseline vs STP)")

    sat_ratio = _ratio(
        [r.stp.satisfiable_sat_calls for r in rows], [r.baseline.satisfiable_sat_calls for r in rows]
    )
    total_ratio = _ratio([r.stp.total_sat_calls for r in rows], [r.baseline.total_sat_calls for r in rows])
    sim_ratio = _ratio([r.stp.simulation_time for r in rows], [r.baseline.simulation_time for r in rows])
    time_ratio = geometric_mean([r.runtime_ratio for r in rows])
    summary = (
        f"\nImp. (geom. mean, STP/baseline): SAT calls {sat_ratio:.2f}, total SAT calls {total_ratio:.2f}, "
        f"simulation time {sim_ratio:.2f}, total runtime {time_ratio:.2f}\n"
        f"Paper reports: SAT calls 0.09, total SAT calls 0.60, simulation time 1.99, total runtime 0.65."
    )
    return table + summary


def _ratio(new: list[float], old: list[float]) -> float:
    return geometric_mean([max(n, 1e-9) for n in new]) / max(geometric_mean([max(o, 1e-9) for o in old]), 1e-9)


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point (``repro-table2``)."""
    parser = argparse.ArgumentParser(description="Regenerate Table II (SAT sweeper comparison)")
    parser.add_argument("--workloads", nargs="*", default=None, help="workload names (default: all fifteen)")
    parser.add_argument("--patterns", type=int, default=64, help="initial pattern count for the STP sweeper")
    parser.add_argument("--conflict-limit", type=int, default=10_000, help="SAT conflict limit per query")
    parser.add_argument("--tfi-limit", type=int, default=1000, help="TFI node bound (paper: 1000)")
    parser.add_argument("--window-leaves", type=int, default=16, help="exhaustive window leaf bound")
    parser.add_argument("--no-verify", action="store_true", help="skip the CEC verification")
    parser.add_argument("--seed", type=int, default=1, help="random seed")
    parser.add_argument(
        "--pre-script",
        default=None,
        help="optimization script run on every workload before sweeping (e.g. 'rw', 'resyn2')",
    )
    arguments = parser.parse_args(argv)
    rows = run_table2(
        workloads=arguments.workloads,
        num_patterns=arguments.patterns,
        conflict_limit=arguments.conflict_limit,
        tfi_limit=arguments.tfi_limit,
        window_leaves=arguments.window_leaves,
        verify=not arguments.no_verify,
        seed=arguments.seed,
        pre_script=arguments.pre_script,
    )
    print(format_table2(rows))
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(main())
