"""Free functions on truth tables: standard gates, STP bridging, metrics."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..stp.canonical import STPForm, canonical_form_from_truth_table
from ..stp.matrices import structural_matrix_from_truth_table
from .truth_table import TruthTable

__all__ = [
    "tt_and",
    "tt_or",
    "tt_xor",
    "tt_not",
    "tt_nand",
    "tt_nor",
    "tt_majority",
    "tt_mux",
    "truth_table_to_structural_matrix",
    "structural_matrix_to_truth_table",
    "truth_table_to_stp_form",
    "stp_form_to_truth_table",
    "toggle_rate",
    "hamming_distance",
]


def tt_and(num_vars: int = 2) -> TruthTable:
    """AND of ``num_vars`` inputs."""
    return TruthTable.from_function(lambda *args: all(args), num_vars)


def tt_or(num_vars: int = 2) -> TruthTable:
    """OR of ``num_vars`` inputs."""
    return TruthTable.from_function(lambda *args: any(args), num_vars)


def tt_xor(num_vars: int = 2) -> TruthTable:
    """XOR (parity) of ``num_vars`` inputs."""
    return TruthTable.from_function(lambda *args: sum(args) % 2 == 1, num_vars)


def tt_not() -> TruthTable:
    """Single-input inverter."""
    return TruthTable.from_function(lambda a: not a, 1)


def tt_nand(num_vars: int = 2) -> TruthTable:
    """NAND of ``num_vars`` inputs."""
    return ~tt_and(num_vars)


def tt_nor(num_vars: int = 2) -> TruthTable:
    """NOR of ``num_vars`` inputs."""
    return ~tt_or(num_vars)


def tt_majority(num_vars: int = 3) -> TruthTable:
    """Majority of an odd number of inputs."""
    if num_vars % 2 == 0:
        raise ValueError("majority requires an odd number of inputs")
    return TruthTable.from_function(lambda *args: sum(args) > num_vars // 2, num_vars)


def tt_mux() -> TruthTable:
    """2:1 multiplexer ``mux(s, a, b) = a if s else b`` (input order s, a, b)."""
    return TruthTable.from_function(lambda s, a, b: a if s else b, 3)


def truth_table_to_structural_matrix(table: TruthTable) -> np.ndarray:
    """Convert a truth table into the 2 x 2^k structural matrix of the LUT.

    Column 0 of the structural matrix is the all-True input assignment, so
    the truth-table bits (indexed by increasing assignment) are reversed.
    """
    return structural_matrix_from_truth_table(list(reversed(table.to_bit_list())))


def structural_matrix_to_truth_table(matrix: np.ndarray) -> TruthTable:
    """Inverse of :func:`truth_table_to_structural_matrix`."""
    array = np.asarray(matrix)
    columns = array.shape[1]
    num_vars = columns.bit_length() - 1
    bits = [int(array[0, columns - 1 - assignment]) for assignment in range(columns)]
    return TruthTable(num_vars, sum(bit << index for index, bit in enumerate(bits)))


def truth_table_to_stp_form(table: TruthTable, variables: Sequence[str] | None = None) -> STPForm:
    """Convert a truth table into an STP canonical form over named variables.

    The STP canonical form treats ``variables[0]`` as the most significant
    bit of the assignment index, whereas truth tables index input 0 as the
    least significant bit; the conversion reconciles the two conventions.
    """
    names = list(variables) if variables is not None else [f"x{i}" for i in range(table.num_vars)]
    if len(names) != table.num_vars:
        raise ValueError(f"expected {table.num_vars} variable names, got {len(names)}")
    # Reindex: STP assignment index i has names[0] as the MSB; the truth
    # table index has input 0 (names[0]) as the LSB.
    outputs = []
    n = table.num_vars
    for stp_index in range(1 << n):
        tt_index = 0
        for position in range(n):
            if (stp_index >> (n - 1 - position)) & 1:
                tt_index |= 1 << position
        outputs.append(int(table.value_at(tt_index)))
    return canonical_form_from_truth_table(outputs, names)


def stp_form_to_truth_table(form: STPForm) -> TruthTable:
    """Inverse of :func:`truth_table_to_stp_form`.

    The canonical form indexes assignments with ``variables[0]`` as the most
    significant bit, whereas truth tables use input 0 as the least
    significant bit; the conversion reindexes accordingly.
    """
    from ..stp.canonical import truth_table_of_form

    outputs = truth_table_of_form(form)
    n = len(form.variables)
    bits = 0
    for stp_index, value in enumerate(outputs):
        if not value:
            continue
        tt_index = 0
        for position in range(n):
            if (stp_index >> (n - 1 - position)) & 1:
                tt_index |= 1 << position
        bits |= 1 << tt_index
    return TruthTable(n, bits)


def toggle_rate(bits: Sequence[int]) -> float:
    """Ratio of bit toggles over the bit-string length (paper, footnote 1).

    A *toggle* is a position where consecutive bits differ.  An empty or
    single-bit sequence has toggle rate 0.
    """
    if len(bits) < 2:
        return 0.0
    toggles = sum(1 for a, b in zip(bits, bits[1:]) if bool(a) != bool(b))
    return toggles / len(bits)


def hamming_distance(left: TruthTable, right: TruthTable) -> int:
    """Number of assignments on which two same-arity functions differ."""
    if left.num_vars != right.num_vars:
        raise ValueError("hamming_distance requires equal arity")
    return (left.bits ^ right.bits).bit_count()
