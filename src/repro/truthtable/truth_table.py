"""Word-packed truth tables.

A :class:`TruthTable` stores the function of a small (k <= ~16 input) node
as a single arbitrary-precision integer, bit ``i`` being the output for the
input assignment encoded by the integer ``i`` with input 0 as the *least*
significant bit.  This is the same convention used by mockturtle/ABC style
truth tables and by the k-LUT networks in :mod:`repro.networks.klut`.

The class is immutable and hashable so it can be used as a dictionary key
(e.g. for structural hashing of LUTs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = ["TruthTable"]

#: Cached block masks for the word-level cofactor: key ``(num_bits,
#: block)``, value a mask selecting the low ``block`` positions of every
#: ``2 * block`` chunk (the assignments where the cofactored input is 0).
_HALF_MASKS: dict[tuple[int, int], int] = {}


def _half_mask(num_bits: int, block: int) -> int:
    key = (num_bits, block)
    mask = _HALF_MASKS.get(key)
    if mask is None:
        ones = (1 << block) - 1
        mask = 0
        for offset in range(0, num_bits, 2 * block):
            mask |= ones << offset
        _HALF_MASKS[key] = mask
    return mask


@dataclass(frozen=True)
class TruthTable:
    """Truth table of a ``num_vars``-input Boolean function.

    Attributes
    ----------
    num_vars:
        Number of inputs ``k``; the table has ``2**k`` bits.
    bits:
        Integer whose bit ``i`` is the function value on the assignment
        whose binary encoding is ``i`` (input 0 = least significant bit).
    """

    num_vars: int
    bits: int

    def __post_init__(self) -> None:
        if self.num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        if self.num_vars > 24:
            raise ValueError(f"truth tables limited to 24 variables, got {self.num_vars}")
        mask = (1 << (1 << self.num_vars)) - 1
        object.__setattr__(self, "bits", self.bits & mask)

    # -- constructors -------------------------------------------------------

    @classmethod
    def constant(cls, value: bool, num_vars: int = 0) -> "TruthTable":
        """Constant-0 or constant-1 function of ``num_vars`` inputs."""
        size = 1 << num_vars
        return cls(num_vars, (1 << size) - 1 if value else 0)

    @classmethod
    def variable(cls, index: int, num_vars: int) -> "TruthTable":
        """Projection onto input ``index`` among ``num_vars`` inputs."""
        if not 0 <= index < num_vars:
            raise ValueError(f"variable index {index} out of range for {num_vars} inputs")
        bits = 0
        for assignment in range(1 << num_vars):
            if (assignment >> index) & 1:
                bits |= 1 << assignment
        return cls(num_vars, bits)

    @classmethod
    def from_bits(cls, output_bits: Sequence[int]) -> "TruthTable":
        """Build from a list of outputs indexed by increasing assignment."""
        size = len(output_bits)
        if size == 0 or size & (size - 1):
            raise ValueError(f"number of outputs must be a power of two, got {size}")
        num_vars = size.bit_length() - 1
        bits = 0
        for index, value in enumerate(output_bits):
            if value:
                bits |= 1 << index
        return cls(num_vars, bits)

    @classmethod
    def from_binary_string(cls, text: str) -> "TruthTable":
        """Build from a binary string written most-significant assignment first.

        ``"0111"`` is the 2-input NAND of the paper's Fig. 1 convention: the
        leftmost character is the output for the all-ones assignment.
        """
        cleaned = text.strip()
        if not cleaned or any(c not in "01" for c in cleaned):
            raise ValueError(f"invalid binary truth-table string {text!r}")
        return cls.from_bits([int(c) for c in reversed(cleaned)])

    @classmethod
    def from_hex(cls, text: str, num_vars: int) -> "TruthTable":
        """Build from a hexadecimal string (most significant nibble first)."""
        return cls(num_vars, int(text, 16))

    @classmethod
    def from_function(cls, function: Callable[..., bool], num_vars: int) -> "TruthTable":
        """Build by evaluating ``function`` on every assignment.

        The function receives ``num_vars`` positional Boolean arguments,
        input 0 first.
        """
        bits = 0
        for assignment in range(1 << num_vars):
            arguments = [bool((assignment >> i) & 1) for i in range(num_vars)]
            if function(*arguments):
                bits |= 1 << assignment
        return cls(num_vars, bits)

    # -- basic accessors -----------------------------------------------------

    @property
    def num_bits(self) -> int:
        """Number of output bits, ``2**num_vars``."""
        return 1 << self.num_vars

    def value_at(self, assignment: int) -> bool:
        """Output for the assignment encoded by the integer ``assignment``."""
        if not 0 <= assignment < self.num_bits:
            raise IndexError(f"assignment {assignment} out of range for {self.num_vars} inputs")
        return bool((self.bits >> assignment) & 1)

    def evaluate(self, inputs: Sequence[bool | int]) -> bool:
        """Output for the assignment given as a list (input 0 first)."""
        if len(inputs) != self.num_vars:
            raise ValueError(f"expected {self.num_vars} inputs, got {len(inputs)}")
        assignment = 0
        for index, value in enumerate(inputs):
            if value:
                assignment |= 1 << index
        return self.value_at(assignment)

    def to_bit_list(self) -> list[int]:
        """Outputs indexed by increasing assignment."""
        return [(self.bits >> i) & 1 for i in range(self.num_bits)]

    def to_binary_string(self) -> str:
        """Binary string, most significant assignment first (Fig. 1 style)."""
        return "".join(str(b) for b in reversed(self.to_bit_list()))

    def to_hex(self) -> str:
        """Hexadecimal string of the packed bits (no ``0x`` prefix)."""
        width = max(1, self.num_bits // 4)
        return format(self.bits, f"0{width}x")

    def count_ones(self) -> int:
        """Number of satisfying assignments."""
        return self.bits.bit_count()

    def is_constant(self) -> bool:
        """True if the function is constant 0 or constant 1."""
        return self.bits == 0 or self.bits == (1 << self.num_bits) - 1

    # -- Boolean algebra -----------------------------------------------------

    def _check_same_arity(self, other: "TruthTable") -> None:
        if self.num_vars != other.num_vars:
            raise ValueError(f"arity mismatch: {self.num_vars} vs {other.num_vars}")

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.num_vars, ~self.bits)

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check_same_arity(other)
        return TruthTable(self.num_vars, self.bits & other.bits)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check_same_arity(other)
        return TruthTable(self.num_vars, self.bits | other.bits)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check_same_arity(other)
        return TruthTable(self.num_vars, self.bits ^ other.bits)

    # -- structural operations ----------------------------------------------

    def cofactor(self, variable: int, value: bool) -> "TruthTable":
        """Shannon cofactor with input ``variable`` fixed to ``value``.

        The result still has ``num_vars`` inputs (the fixed input becomes a
        don't-care), matching the usual word-level cofactor semantics.

        Computed with wide integer arithmetic (select every half-block,
        duplicate it into the other half) instead of a per-assignment
        Python loop; the refactoring pass's decomposition synthesis calls
        this in its innermost recursion, where the loop version dominated
        the pass runtime.
        """
        if not 0 <= variable < self.num_vars:
            raise ValueError(f"variable {variable} out of range")
        block = 1 << variable
        mask = _half_mask(self.num_bits, block)
        half = ((self.bits >> block) if value else self.bits) & mask
        return TruthTable(self.num_vars, half | (half << block))

    def depends_on(self, variable: int) -> bool:
        """True if the function actually depends on input ``variable``."""
        return self.cofactor(variable, False) != self.cofactor(variable, True)

    def support(self) -> list[int]:
        """Indices of the inputs the function depends on."""
        return [v for v in range(self.num_vars) if self.depends_on(v)]

    def permute_inputs(self, permutation: Sequence[int]) -> "TruthTable":
        """Reorder inputs: new input ``i`` is old input ``permutation[i]``."""
        if sorted(permutation) != list(range(self.num_vars)):
            raise ValueError(f"invalid permutation {list(permutation)} for {self.num_vars} inputs")
        bits = 0
        for assignment in range(self.num_bits):
            source = 0
            for new_index, old_index in enumerate(permutation):
                if (assignment >> new_index) & 1:
                    source |= 1 << old_index
            if self.value_at(source):
                bits |= 1 << assignment
        return TruthTable(self.num_vars, bits)

    def extend(self, num_vars: int) -> "TruthTable":
        """Pad with additional (don't-care) inputs up to ``num_vars``."""
        if num_vars < self.num_vars:
            raise ValueError("cannot shrink a truth table with extend()")
        result = self
        while result.num_vars < num_vars:
            result = TruthTable(
                result.num_vars + 1,
                result.bits | (result.bits << result.num_bits),
            )
        return result

    def shrink_to_support(self) -> tuple["TruthTable", list[int]]:
        """Project onto the true support; returns the smaller table and the kept inputs."""
        kept = self.support()
        bits = 0
        for assignment in range(1 << len(kept)):
            source = 0
            for new_index, old_index in enumerate(kept):
                if (assignment >> new_index) & 1:
                    source |= 1 << old_index
            if self.value_at(source):
                bits |= 1 << assignment
        return TruthTable(len(kept), bits), kept

    def compose(self, inputs: Sequence["TruthTable"]) -> "TruthTable":
        """Substitute a truth table for every input of this function.

        Every element of ``inputs`` must have the same arity ``m``; the
        result is an ``m``-input table computing
        ``self(inputs[0](y), ..., inputs[k-1](y))``.
        """
        if len(inputs) != self.num_vars:
            raise ValueError(f"expected {self.num_vars} input functions, got {len(inputs)}")
        if self.num_vars == 0:
            return self
        inner_vars = inputs[0].num_vars
        for table in inputs:
            if table.num_vars != inner_vars:
                raise ValueError("all composed inputs must have the same arity")
        bits = 0
        for assignment in range(1 << inner_vars):
            index = 0
            for position, table in enumerate(inputs):
                if table.value_at(assignment):
                    index |= 1 << position
            if self.value_at(index):
                bits |= 1 << assignment
        return TruthTable(inner_vars, bits)

    def __str__(self) -> str:
        return f"TruthTable({self.num_vars} vars, 0x{self.to_hex()})"
