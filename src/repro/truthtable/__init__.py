"""Word-packed truth tables and helpers bridging them to STP matrices."""

from .truth_table import TruthTable
from .operations import (
    tt_and,
    tt_or,
    tt_xor,
    tt_not,
    tt_nand,
    tt_nor,
    tt_majority,
    tt_mux,
    truth_table_to_structural_matrix,
    structural_matrix_to_truth_table,
    truth_table_to_stp_form,
    stp_form_to_truth_table,
    toggle_rate,
    hamming_distance,
)

__all__ = [
    "TruthTable",
    "tt_and",
    "tt_or",
    "tt_xor",
    "tt_not",
    "tt_nand",
    "tt_nor",
    "tt_majority",
    "tt_mux",
    "truth_table_to_structural_matrix",
    "structural_matrix_to_truth_table",
    "truth_table_to_stp_form",
    "stp_form_to_truth_table",
    "toggle_rate",
    "hamming_distance",
]
