"""Structural choice computation (the ``choice`` pass, a ``dch``-style flow).

ABC's ``dch`` synthesises several snapshots of a network and fraigs them
together so the mapper can pick, node by node, among all the structures
the snapshots propose.  This pass is the incremental analogue built on
the machinery already in the tree:

1. **rewriting choices** -- the DAG-aware rewriter runs in additive
   mode: the winning library structure of every 4-cut is instantiated
   *next to* the subject logic and linked as a choice of the visited
   node (:func:`repro.rewriting.rewrite.rewrite` with
   ``record_choices``);
2. **refactoring choices** -- the MFFC resynthesiser contributes a
   restructured cone per wide reconvergent region the 4-cuts cannot
   see;
3. **snapshot choices** -- whole synthesis snapshots (an AND-tree
   balanced variant and a ``resyn2``-style restructuring of the input)
   are instantiated over the subject network's PIs through the
   strashing constructor, so shared structure deduplicates and only the
   genuinely different cones materialise;
4. **fraig choices** -- the SAT sweeper proves candidate equivalences
   exactly as in a normal sweep but *records* every proven pair as a
   choice class instead of substituting it, so reconvergent structures
   -- and the snapshot cones, which simulate identically to their
   subject counterparts -- become alternatives of one another
   (complemented equivalences included).

The subject network is never mutated -- every stage only adds dangling
alternative structures and class links -- so the pass is functionally
the identity on the primary outputs, and a later choice-aware ``map``
is guaranteed never to do worse than mapping the original network (the
mapper's plain fallback sees exactly the original subject graph).

Entry points: :func:`compute_choices` here, the ``choice`` pass name in
:class:`~repro.rewriting.passes.PassManager` scripts (``"choice; map"``)
and ``repro map --choices`` on the command line.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..networks.aig import Aig
from ..sweeping.fraig import FraigSweeper
from .balance import balance
from .library import RewriteLibrary
from .refactor import refactor
from .rewrite import rewrite

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from ..resilience import Budget

__all__ = ["ChoiceReport", "compute_choices"]


def _resyn2(aig: Aig, library: RewriteLibrary | None) -> Aig:
    """The canonical ``resyn2`` snapshot, via the pass pipeline.

    Runs the one recipe defined in ``passes.NAMED_SCRIPTS`` (imported
    lazily -- the :class:`PassManager` imports this module the same
    way), so the snapshot stage can never drift from the flow users
    run.
    """
    from .passes import PassManager

    result, _stats = PassManager("resyn2", library=library).run(aig)
    assert isinstance(result, Aig)
    return result


def _append_snapshot(work: Aig, snapshot: Aig) -> int:
    """Instantiate a snapshot's gates over ``work``'s PIs (no POs added).

    The snapshot must have the same primary inputs (count and order) as
    the subject network.  Gates are re-created through the strashing
    constructor, so structure shared with the subject -- or with an
    earlier snapshot -- deduplicates and only genuinely different cones
    materialise as dangling logic for the fraig stage to link.  Returns
    the number of gates actually created.
    """
    if snapshot.num_pis != work.num_pis:
        raise ValueError(
            f"snapshot has {snapshot.num_pis} PIs but the subject network has {work.num_pis}"
        )
    created_before = work.num_ands
    literal_map: dict[int, int] = {0: 0}
    for snapshot_pi, work_pi in zip(snapshot.pis, work.pis):
        literal_map[snapshot_pi] = Aig.literal(work_pi)
    for node in snapshot.topological_order():
        fanin0, fanin1 = snapshot.fanins(node)
        new0 = literal_map[fanin0 >> 1] ^ (fanin0 & 1)
        new1 = literal_map[fanin1 >> 1] ^ (fanin1 & 1)
        literal_map[node] = work.add_and(new0, new1)
    return work.num_ands - created_before


@dataclass
class ChoiceReport:
    """Counters collected by one choice-computation pass."""

    gates_before: int = 0
    gates_after: int = 0
    choice_classes: int = 0
    choice_alternatives: int = 0
    rewrite_recorded: int = 0
    refactor_recorded: int = 0
    snapshot_gates: int = 0
    fraig_recorded: int = 0
    fraig_skipped: int = 0
    sat_calls: int = 0
    sat_time: float = 0.0
    total_time: float = 0.0
    #: CDCL-core counters of the fraig stage's solver windows
    #: (``SolverStatistics.as_dict()`` plus window bookkeeping), copied
    #: from the sweep's :class:`~repro.sweeping.stats.SweepStatistics`.
    solver_statistics: dict[str, int] = field(default_factory=dict)
    window_reuse_rate: float = 0.0

    def as_details(self) -> dict[str, float]:
        """Flat numeric view for per-pass statistics."""
        details = {f"sat_{key}": float(value) for key, value in self.solver_statistics.items()}
        if self.solver_statistics:
            details["sat_window_reuse_rate"] = self.window_reuse_rate
        return details | {
            "choice_classes": float(self.choice_classes),
            "choice_alternatives": float(self.choice_alternatives),
            "rewrite_recorded": float(self.rewrite_recorded),
            "refactor_recorded": float(self.refactor_recorded),
            "snapshot_gates": float(self.snapshot_gates),
            "fraig_recorded": float(self.fraig_recorded),
            "fraig_skipped": float(self.fraig_skipped),
            "sat_calls": float(self.sat_calls),
            "sat_time": self.sat_time,
        }


def compute_choices(
    aig: Aig,
    num_patterns: int = 64,
    seed: int = 1,
    conflict_limit: int | None = 10_000,
    library: RewriteLibrary | None = None,
    with_rewrite: bool = True,
    with_refactor: bool = True,
    with_snapshots: bool = False,
    with_fraig: bool = True,
    budget: "Budget | None" = None,
    window_size: int | None = None,
) -> tuple[Aig, ChoiceReport]:
    """Augment (a copy of) the network with structural choice classes.

    Returns the choice-carrying network and a report.  The subject logic
    -- every gate reachable from a primary output -- is structurally
    identical to the input's; only dangling alternative structures and
    their class links are added, so the result is trivially equivalent
    to the input and existing choices of the input survive.  The stages
    can be disabled individually (``with_rewrite`` / ``with_refactor`` /
    ``with_snapshots`` / ``with_fraig``); without the fraig stage the
    snapshot cones stay unlinked, so ``with_snapshots`` only pays off
    together with ``with_fraig``.  ``window_size`` is the fraig stage's
    solver-window policy (``None`` = one persistent incremental solver,
    ``1`` = fresh-encode-per-query oracle).
    """
    start = time.perf_counter()
    report = ChoiceReport(gates_before=aig.num_ands)
    work = aig
    if with_rewrite:
        if budget is not None:
            budget.checkpoint("choice")
        work, rewrite_report = rewrite(work, record_choices=True, library=library)
        report.rewrite_recorded = rewrite_report.choices_recorded
    if with_refactor:
        if budget is not None:
            budget.checkpoint("choice")
        work, refactor_report = refactor(work, record_choices=True)
        report.refactor_recorded = refactor_report.choices_recorded
    if work is aig:
        work = aig.clone()
    if with_snapshots and with_fraig:
        if budget is not None:
            budget.checkpoint("choice")
        balanced, _balance_report = balance(aig)
        report.snapshot_gates += _append_snapshot(work, balanced)
        report.snapshot_gates += _append_snapshot(work, _resyn2(aig, library))
    if with_fraig:
        work, sweep_stats = FraigSweeper(
            work,
            num_patterns=num_patterns,
            seed=seed,
            conflict_limit=conflict_limit,
            record_choices=True,
            budget=budget,
            window_size=window_size,
        ).run()
        report.fraig_recorded = int(sweep_stats.extra.get("choices_recorded", 0.0))
        report.fraig_skipped = int(sweep_stats.extra.get("choice_skipped", 0.0))
        report.sat_calls = sweep_stats.total_sat_calls
        report.sat_time = sweep_stats.sat_time
        report.solver_statistics = dict(sweep_stats.solver_statistics)
        report.window_reuse_rate = sweep_stats.extra.get("window_reuse_rate", 0.0)
    report.gates_after = work.num_ands
    report.choice_classes = work.num_choice_classes
    report.choice_alternatives = work.num_choice_alternatives
    report.total_time = time.perf_counter() - start
    return work, report
