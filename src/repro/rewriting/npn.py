"""NPN canonicalization of small truth tables.

Two Boolean functions are *NPN-equivalent* when one can be obtained from
the other by Negating inputs, Permuting inputs and optionally Negating
the output.  The 65536 four-input functions collapse into 222 NPN
classes, so a rewriting library only has to store one good AIG structure
per class instead of one per function -- the classical trick behind
DAG-aware AIG rewriting (ABC's ``rewrite``, mockturtle's cut rewriting).

For the arities the rewriter uses (``k <= 4``) the canonical form is
computed *exactly*, by enumerating all ``k! * 2^k * 2`` transforms and
taking the one whose transformed bit pattern is numerically smallest.
Per-arity source-index tables are precomputed once, so applying one
transform is a ``2^k``-step bit gather, and results are memoised per
function, so repeated cut functions (ubiquitous in real netlists)
canonicalise in one dictionary lookup.

Conventions
-----------

A transform ``t = (permutation, input_negations, output_negation)`` maps
a function ``f`` to ``g = t(f)`` with

    g(x_0, ..., x_{n-1}) = c ^ f(z_0, ..., z_{n-1}),
    z_j = x_{permutation[j]} ^ ((input_negations >> j) & 1)

i.e. input ``j`` of ``f`` reads variable ``permutation[j]`` of ``g``,
possibly negated, and ``c`` is the output negation.
:func:`npn_canonicalize` returns the canonical representative together
with the transform that produced it, and the library inverts that
transform when instantiating a stored structure (see
:mod:`repro.rewriting.library`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import permutations

from ..truthtable import TruthTable

__all__ = ["NpnTransform", "npn_canonicalize", "apply_npn_transform", "npn_classes"]

#: Largest arity the exhaustive canonicalization supports.  ``k = 5``
#: would already mean 7680 transforms of 32 bits each per new function.
MAX_NPN_VARS = 4


@dataclass(frozen=True)
class NpnTransform:
    """One NPN transform ``f -> output_negation ^ f(inputs permuted/negated)``.

    ``permutation[j]`` is the transformed-function variable read by input
    ``j`` of the original function; bit ``j`` of ``input_negations``
    complements that input; ``output_negation`` complements the result.
    """

    permutation: tuple[int, ...]
    input_negations: int
    output_negation: bool

    @property
    def num_vars(self) -> int:
        """Arity of the functions this transform acts on."""
        return len(self.permutation)


def _source_indices(permutation: tuple[int, ...], negations: int) -> tuple[int, ...]:
    """For each output assignment, the input assignment of the original function."""
    num_vars = len(permutation)
    sources = []
    for assignment in range(1 << num_vars):
        source = 0
        for j in range(num_vars):
            bit = (assignment >> permutation[j]) & 1
            if (negations >> j) & 1:
                bit ^= 1
            if bit:
                source |= 1 << j
        sources.append(source)
    return tuple(sources)


@lru_cache(maxsize=MAX_NPN_VARS + 1)
def _transform_tables(num_vars: int) -> list[tuple[tuple[int, ...], int, tuple[int, ...]]]:
    """All ``n! * 2^n`` (permutation, negation-mask, source-index) triples."""
    tables = []
    for permutation in permutations(range(num_vars)):
        for negations in range(1 << num_vars):
            tables.append((permutation, negations, _source_indices(permutation, negations)))
    return tables


def _gather(bits: int, sources: tuple[int, ...]) -> int:
    """Permute the bit pattern of a truth table through a source-index table."""
    out = 0
    for assignment, source in enumerate(sources):
        if (bits >> source) & 1:
            out |= 1 << assignment
    return out


def apply_npn_transform(table: TruthTable, transform: NpnTransform) -> TruthTable:
    """Apply one NPN transform to a truth table."""
    if transform.num_vars != table.num_vars:
        raise ValueError(
            f"transform arity {transform.num_vars} does not match table arity {table.num_vars}"
        )
    sources = _source_indices(transform.permutation, transform.input_negations)
    bits = _gather(table.bits, sources)
    if transform.output_negation:
        bits = ~bits & ((1 << table.num_bits) - 1)
    return TruthTable(table.num_vars, bits)


#: Memoised canonicalization results, keyed by (num_vars, bits).
_canonical_cache: dict[tuple[int, int], tuple[TruthTable, NpnTransform]] = {}


def npn_canonicalize(table: TruthTable) -> tuple[TruthTable, NpnTransform]:
    """Exact NPN-canonical representative of a function of at most 4 inputs.

    Returns ``(representative, transform)`` with
    ``apply_npn_transform(table, transform) == representative``; the
    representative is the numerically smallest transformed bit pattern,
    so it is identical for every member of the NPN class.
    """
    if table.num_vars > MAX_NPN_VARS:
        raise ValueError(
            f"NPN canonicalization limited to {MAX_NPN_VARS} variables, got {table.num_vars}"
        )
    key = (table.num_vars, table.bits)
    cached = _canonical_cache.get(key)
    if cached is not None:
        return cached
    full = (1 << table.num_bits) - 1
    best_bits: int | None = None
    best: NpnTransform | None = None
    for permutation, negations, sources in _transform_tables(table.num_vars):
        gathered = _gather(table.bits, sources)
        for output_negation in (False, True):
            bits = (~gathered & full) if output_negation else gathered
            if best_bits is None or bits < best_bits:
                best_bits = bits
                best = NpnTransform(permutation, negations, output_negation)
    assert best_bits is not None and best is not None
    result = (TruthTable(table.num_vars, best_bits), best)
    _canonical_cache[key] = result
    return result


def npn_classes(num_vars: int) -> set[int]:
    """Canonical-representative bit patterns of *all* functions of ``num_vars`` inputs.

    Exhaustive over ``2^(2^n)`` functions -- intended for tests at
    ``n <= 3`` (4 classes at ``n = 2``, 14 at ``n = 3``); at ``n = 4``
    the known answer is 222, but enumerating it takes a while in Python.
    """
    representatives: set[int] = set()
    for bits in range(1 << (1 << num_vars)):
        representative, _ = npn_canonicalize(TruthTable(num_vars, bits))
        representatives.add(representative.bits)
    return representatives
