"""Precomputed library of small AIG implementations, keyed by NPN class.

The rewriting pass replaces the logic inside a 4-input cut with a
precomputed AIG subgraph computing the same function.  This module owns
those subgraphs:

* :class:`AigStructure` -- a tiny standalone AIG (constant, ``k`` input
  variables, AND gates with complemented edges) that can be simulated to
  a truth table or instantiated into a host :class:`~repro.networks.aig.Aig`
  on arbitrary leaf literals;
* :class:`RewriteLibrary` -- the structure store.  Lookups canonicalise
  the requested function with :func:`repro.rewriting.npn.npn_canonicalize`
  and keep one structure per NPN class, so the 65536 possible 4-input cut
  functions share 222 stored entries.

Library construction is a two-stage hybrid:

1. *Bounded exhaustive enumeration*: every function reachable by an AIG
   of at most ``exact_gate_limit`` AND gates (default 6, ~15k of the
   65536 4-input functions, built in ~0.15 s) is discovered by
   breadth-first bottom-up enumeration over function pairs, recording the
   first -- hence smallest within the enumeration's pairing model -- AND
   realisation.  This covers all 2-input functions, all 3-input classes
   except full parity, and the small 4-input classes with size-minimal
   structures.
2. *Decomposition synthesis*: classes beyond the enumeration bound are
   synthesised by memoised Shannon decomposition with special-cased
   AND / OR / XOR / MUX shapes.  The same synthesiser also serves the
   refactoring pass, which needs functions of up to ~10 inputs where no
   exhaustive library can exist.

Both stages run lazily and are memoised per process (see
:func:`default_library`), so the cost is paid once per arity, not once
per cut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..networks.aig import Aig
from ..truthtable import TruthTable
from .npn import MAX_NPN_VARS, NpnTransform, npn_canonicalize

__all__ = ["AigStructure", "RewriteLibrary", "default_library", "synthesize_structure"]

#: Support size up to which the decomposition synthesiser searches all
#: splitting variables with the memoised cost estimator; above it a local
#: heuristic picks the variable (cofactor special cases, then support
#: shrinkage) to keep refactoring cones cheap.
_FULL_SEARCH_VARS = 8


# ---------------------------------------------------------------------------
# Structures
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AigStructure:
    """A small standalone AIG over ``num_vars`` input variables.

    Node numbering mirrors :class:`~repro.networks.aig.Aig`: node 0 is
    constant false, nodes ``1 .. num_vars`` are the input variables, and
    node ``num_vars + 1 + i`` is gate ``i``.  Literals are
    ``2 * node + complement``.  ``gates[i]`` holds the two fanin literals
    of gate ``i`` (referencing only earlier nodes) and ``output`` is the
    literal computing the structure's function.
    """

    num_vars: int
    gates: tuple[tuple[int, int], ...]
    output: int

    @property
    def num_gates(self) -> int:
        """Number of AND gates in the structure."""
        return len(self.gates)

    def truth_table(self) -> TruthTable:
        """Simulate the structure into a truth table (word-parallel)."""
        full = (1 << (1 << self.num_vars)) - 1
        values = [0] + [TruthTable.variable(i, self.num_vars).bits for i in range(self.num_vars)]
        for fanin0, fanin1 in self.gates:
            value0 = values[fanin0 >> 1] ^ (full if fanin0 & 1 else 0)
            value1 = values[fanin1 >> 1] ^ (full if fanin1 & 1 else 0)
            values.append(value0 & value1)
        result = values[self.output >> 1] ^ (full if self.output & 1 else 0)
        return TruthTable(self.num_vars, result)

    def instantiate(self, aig: Aig, leaf_literals: Sequence[int]) -> int:
        """Build the structure inside a host AIG; returns the output literal.

        ``leaf_literals[i]`` drives input variable ``i``.  Construction
        goes through :meth:`Aig.add_and`, so existing gates are reused by
        structural hashing and trivial shapes simplify away.
        """
        if len(leaf_literals) != self.num_vars:
            raise ValueError(f"expected {self.num_vars} leaf literals, got {len(leaf_literals)}")
        literals = [0] + list(leaf_literals)
        for fanin0, fanin1 in self.gates:
            literal0 = literals[fanin0 >> 1] ^ (fanin0 & 1)
            literal1 = literals[fanin1 >> 1] ^ (fanin1 & 1)
            literals.append(aig.add_and(literal0, literal1))
        return literals[self.output >> 1] ^ (self.output & 1)


class _StructureBuilder:
    """Mini-AIG builder with structural hashing, used to assemble structures."""

    def __init__(self, num_vars: int) -> None:
        self.num_vars = num_vars
        self.gates: list[tuple[int, int]] = []
        self._strash: dict[tuple[int, int], int] = {}

    def var(self, index: int) -> int:
        """Positive literal of input variable ``index``."""
        return 2 * (1 + index)

    def add_and(self, a: int, b: int) -> int:
        """AND of two literals with the usual one-level simplifications."""
        if a == 0 or b == 0:
            return 0
        if a == 1:
            return b
        if b == 1:
            return a
        if a == b:
            return a
        if a == (b ^ 1):
            return 0
        if a > b:
            a, b = b, a
        existing = self._strash.get((a, b))
        if existing is not None:
            return existing
        node = self.num_vars + 1 + len(self.gates)
        self.gates.append((a, b))
        literal = 2 * node
        self._strash[(a, b)] = literal
        return literal

    def add_or(self, a: int, b: int) -> int:
        """OR of two literals (De Morgan)."""
        return self.add_and(a ^ 1, b ^ 1) ^ 1

    def add_xor(self, a: int, b: int) -> int:
        """XOR of two literals (two ANDs plus an OR)."""
        return self.add_or(self.add_and(a, b ^ 1), self.add_and(a ^ 1, b))

    def add_mux(self, select: int, when_true: int, when_false: int) -> int:
        """2:1 multiplexer ``select ? when_true : when_false``."""
        return self.add_or(self.add_and(select, when_true), self.add_and(select ^ 1, when_false))

    def structure(self, output: int) -> AigStructure:
        """Freeze the builder into an :class:`AigStructure`."""
        return AigStructure(self.num_vars, tuple(self.gates), output)


# ---------------------------------------------------------------------------
# Stage 1: bounded exhaustive enumeration
# ---------------------------------------------------------------------------


def _enumerate_exact(num_vars: int, max_gates: int) -> dict[int, tuple]:
    """Breadth-first enumeration of every function reachable in ``max_gates`` ANDs.

    Returns a map from function bits to either ``("leaf", 0, literal)``
    or ``("and", cost, fanin_bits_a, phase_a, fanin_bits_b, phase_b)``
    where the fanin entries reference other keys of the map.  The
    enumeration builds AND-rooted functions only, so a cheap function may
    still get an expensive entry when its *complement* is the cheap one
    (output complementation is free in an AIG); callers must compare the
    recorded costs of both phases and take the minimum.  BFS order
    guarantees each recorded realisation has the minimum gate count
    within the pairing model (operand costs add; sharing between the two
    operand cones is discovered only at instantiation time).
    """
    full = (1 << (1 << num_vars)) - 1
    entries: dict[int, tuple] = {0: ("leaf", 0, 0)}
    by_cost: list[list[int]] = [[0]]
    for index in range(num_vars):
        bits = TruthTable.variable(index, num_vars).bits
        entries[bits] = ("leaf", 0, 2 * (1 + index))
        by_cost[0].append(bits)
    for cost in range(1, max_gates + 1):
        fresh: dict[int, tuple] = {}
        for cost_a in range((cost - 1) // 2 + 1):
            cost_b = cost - 1 - cost_a
            group_a = by_cost[cost_a]
            group_b = by_cost[cost_b]
            same = cost_a == cost_b
            for ia, bits_a in enumerate(group_a):
                complement_a = full ^ bits_a
                start = ia if same else 0
                for bits_b in group_b[start:]:
                    complement_b = full ^ bits_b
                    for phase_a, value_a in ((0, bits_a), (1, complement_a)):
                        for phase_b, value_b in ((0, bits_b), (1, complement_b)):
                            product = value_a & value_b
                            if product == 0 or product == value_a or product == value_b:
                                continue
                            if product in entries or product in fresh:
                                continue
                            fresh[product] = ("and", cost, bits_a, phase_a, bits_b, phase_b)
        entries.update(fresh)
        by_cost.append(list(fresh))
    return entries


def _materialize(entries: Mapping[int, tuple], bits: int, num_vars: int) -> AigStructure:
    """Turn one enumeration entry into an :class:`AigStructure` (with sharing)."""
    builder = _StructureBuilder(num_vars)
    memo: dict[int, int] = {}

    def literal_of(function_bits: int) -> int:
        cached = memo.get(function_bits)
        if cached is not None:
            return cached
        record = entries[function_bits]
        if record[0] == "leaf":
            literal = record[2]
        else:
            _, _, bits_a, phase_a, bits_b, phase_b = record
            literal = builder.add_and(literal_of(bits_a) ^ phase_a, literal_of(bits_b) ^ phase_b)
        memo[function_bits] = literal
        return literal

    return builder.structure(literal_of(bits))


# ---------------------------------------------------------------------------
# Stage 2: decomposition synthesis
# ---------------------------------------------------------------------------

#: Memoised gate-count estimates for the decomposition chooser.
_cost_memo: dict[tuple[int, int], int] = {}


def _estimate_cost(table: TruthTable) -> int:
    """Estimated AND count of the decomposition of ``table`` (no sharing)."""
    key = (table.num_vars, table.bits)
    cached = _cost_memo.get(key)
    if cached is not None:
        return cached
    support = table.support()
    if table.is_constant() or len(support) <= 1:
        cost = 0
    else:
        cost = min(_split_cost(table, variable) for variable in support)
    _cost_memo[key] = cost
    return cost


def _split_cost(table: TruthTable, variable: int) -> int:
    """Cost of decomposing ``table`` on one splitting variable."""
    cofactor0 = table.cofactor(variable, False)
    cofactor1 = table.cofactor(variable, True)
    if cofactor0.is_constant() or cofactor1.is_constant():
        other = cofactor1 if cofactor0.is_constant() else cofactor0
        return 1 + _estimate_cost(other)
    if cofactor1.bits == (~cofactor0).bits:
        return 3 + _estimate_cost(cofactor0)
    return 3 + _estimate_cost(cofactor0) + _estimate_cost(cofactor1)


def _choose_split(table: TruthTable, support: list[int]) -> int:
    """Pick the splitting variable for the Shannon decomposition.

    Small supports are searched exactly with the memoised cost estimator;
    larger ones (refactoring cones) use a local heuristic: prefer
    variables whose cofactors hit a special case, then minimise the
    remaining combined support.
    """
    if len(support) <= _FULL_SEARCH_VARS:
        return min(support, key=lambda variable: _split_cost(table, variable))

    def local_score(variable: int) -> tuple[int, int]:
        cofactor0 = table.cofactor(variable, False)
        cofactor1 = table.cofactor(variable, True)
        special = (
            cofactor0.is_constant()
            or cofactor1.is_constant()
            or cofactor1.bits == (~cofactor0).bits
        )
        return (0 if special else 1, len(cofactor0.support()) + len(cofactor1.support()))

    return min(support, key=local_score)


def _emit_decomposition(table: TruthTable, builder: _StructureBuilder, memo: dict[int, int]) -> int:
    """Emit the decomposition of ``table`` into ``builder``; returns a literal."""
    cached = memo.get(table.bits)
    if cached is not None:
        return cached
    full = (1 << table.num_bits) - 1
    support = table.support()
    if table.is_constant():
        literal = 1 if table.bits == full else 0
    elif len(support) == 1:
        variable = builder.var(support[0])
        literal = variable if table.bits == TruthTable.variable(support[0], table.num_vars).bits else variable ^ 1
    else:
        split = _choose_split(table, support)
        select = builder.var(split)
        cofactor0 = table.cofactor(split, False)
        cofactor1 = table.cofactor(split, True)
        if cofactor0.bits == 0:
            literal = builder.add_and(select, _emit_decomposition(cofactor1, builder, memo))
        elif cofactor0.bits == full:
            literal = builder.add_or(select ^ 1, _emit_decomposition(cofactor1, builder, memo))
        elif cofactor1.bits == 0:
            literal = builder.add_and(select ^ 1, _emit_decomposition(cofactor0, builder, memo))
        elif cofactor1.bits == full:
            literal = builder.add_or(select, _emit_decomposition(cofactor0, builder, memo))
        elif cofactor1.bits == (~cofactor0).bits:
            literal = builder.add_xor(select, _emit_decomposition(cofactor0, builder, memo))
        else:
            literal = builder.add_mux(
                select,
                _emit_decomposition(cofactor1, builder, memo),
                _emit_decomposition(cofactor0, builder, memo),
            )
    memo[table.bits] = literal
    return literal


def synthesize_structure(table: TruthTable) -> AigStructure:
    """Synthesise an AIG structure for an arbitrary function by decomposition.

    Used directly by the refactoring pass (arities beyond the NPN bound)
    and as the library's fallback for classes the bounded enumeration does
    not reach.  Shared subfunctions are emitted once per call (memoised on
    the cofactor bits) and the builder's structural hashing folds
    structurally identical gates.
    """
    builder = _StructureBuilder(table.num_vars)
    output = _emit_decomposition(table, builder, {})
    return builder.structure(output)


# ---------------------------------------------------------------------------
# The library
# ---------------------------------------------------------------------------


def _transform_structure(structure: AigStructure, transform: NpnTransform) -> AigStructure:
    """Structure for ``f`` given the structure of its NPN representative.

    With ``rep = transform(f)`` (see :mod:`repro.rewriting.npn`),
    ``f(z) = c ^ rep(x)`` where representative input ``i`` reads
    ``z_j ^ neg_j`` for ``j = permutation^{-1}(i)``; variables are
    remapped accordingly and the output phase absorbs ``c``.
    """
    num_vars = transform.num_vars
    inverse = [0] * num_vars
    for j, i in enumerate(transform.permutation):
        inverse[i] = j

    def remap(literal: int) -> int:
        node = literal >> 1
        if 1 <= node <= num_vars:
            j = inverse[node - 1]
            negated = (transform.input_negations >> j) & 1
            return 2 * (1 + j) + ((literal & 1) ^ negated)
        return literal

    gates = tuple((remap(fanin0), remap(fanin1)) for fanin0, fanin1 in structure.gates)
    output = remap(structure.output) ^ (1 if transform.output_negation else 0)
    return AigStructure(num_vars, gates, output)


class RewriteLibrary:
    """Structure store keyed by NPN class, shared by all rewriting passes.

    One library instance serves every arity up to ``num_vars`` (cuts of
    fewer leaves canonicalise at their own arity).  Exact-enumeration
    tables and per-class structures are built lazily and cached, so the
    first lookup of an arity pays the enumeration cost and later lookups
    are dictionary hits.
    """

    def __init__(self, num_vars: int = 4, exact_gate_limit: int = 6) -> None:
        if num_vars > MAX_NPN_VARS:
            raise ValueError(f"library limited to {MAX_NPN_VARS}-input cuts, got {num_vars}")
        self.num_vars = num_vars
        self.exact_gate_limit = exact_gate_limit
        # Values are Mappings, not necessarily dicts: a worker that
        # attached the parent's shared-memory blob installs read-only
        # binary views here (see :mod:`repro.rewriting.shared`).
        self._exact_by_arity: dict[int, Mapping[int, tuple]] = {}
        self._class_structures: dict[tuple[int, int], AigStructure] = {}
        self.exact_hits = 0
        self.decomposed = 0

    @property
    def num_cached_classes(self) -> int:
        """Number of NPN classes with a cached structure."""
        return len(self._class_structures)

    def structure(self, table: TruthTable) -> AigStructure:
        """AIG structure computing ``table`` exactly (arity preserved)."""
        if table.num_vars > self.num_vars:
            raise ValueError(
                f"library built for {self.num_vars}-input functions, got {table.num_vars}"
            )
        representative, transform = npn_canonicalize(table)
        stored = self._representative_structure(representative)
        return _transform_structure(stored, transform)

    def _representative_structure(self, representative: TruthTable) -> AigStructure:
        key = (representative.num_vars, representative.bits)
        cached = self._class_structures.get(key)
        if cached is not None:
            return cached
        entries = self._exact_entries(representative.num_vars)
        full = (1 << representative.num_bits) - 1
        direct = entries.get(representative.bits)
        inverted = entries.get(full ^ representative.bits)
        # Output complementation is free, so pick the cheaper phase.
        if inverted is not None and (direct is None or inverted[1] < direct[1]):
            complement = _materialize(entries, full ^ representative.bits, representative.num_vars)
            structure = AigStructure(complement.num_vars, complement.gates, complement.output ^ 1)
            self.exact_hits += 1
        elif direct is not None:
            structure = _materialize(entries, representative.bits, representative.num_vars)
            self.exact_hits += 1
        else:
            structure = synthesize_structure(representative)
            self.decomposed += 1
        self._class_structures[key] = structure
        return structure

    def _exact_entries(self, num_vars: int) -> Mapping[int, tuple]:
        entries = self._exact_by_arity.get(num_vars)
        if entries is None:
            entries = _enumerate_exact(num_vars, self.exact_gate_limit)
            self._exact_by_arity[num_vars] = entries
        return entries


_default_library: RewriteLibrary | None = None


def default_library() -> RewriteLibrary:
    """Process-wide shared :class:`RewriteLibrary` (built lazily once)."""
    global _default_library
    if _default_library is None:
        _default_library = RewriteLibrary()
    return _default_library
