"""Mapped-network resynthesis: MFFC collapse on k-LUT networks (the ``lutmffc`` pass).

Technology mapping selects cuts over the *subject AIG*; once the network
is expressed as LUTs, new area opportunities appear that no AIG cut can
see -- most importantly, a LUT cone whose combined support still fits
into ``k`` inputs can collapse into a **single** LUT, and wider cones can
be re-decomposed from their collapsed truth table into fewer LUTs than
the mapper chose.  This is the first pass that *optimizes the mapped
network in place*, which the read-only seed ``KLutNetwork`` made
impossible; it exists because the container now carries the full
:class:`~repro.networks.protocol.MutableNetwork` surface (O(1)
``fanout_count`` for the MFFC walk, incremental :meth:`substitute`
with listener events, ``cleanup_dangling`` for the freed cones).

Per LUT node, in topological order:

1. collect the node's maximum fanout-free cone (the LUTs freed if the
   node is substituted away) with the network-generic
   :func:`~repro.rewriting.mffc.collect_mffc`;
2. collapse the cone into one truth table over its boundary leaves with
   the validating k-LUT cone walker, and shrink it to its true support
   (mapping regularly leaves don't-care inputs behind);
3. price a replacement: a constant or wire for degenerate functions,
   one LUT when the support fits ``k``, otherwise a re-decomposition --
   the collapsed function goes through the existing decomposition
   synthesiser (:func:`~repro.rewriting.library.synthesize_structure`)
   and the multi-pass mapper, and the resulting LUT cone is spliced in;
4. commit through the incremental :meth:`KLutNetwork.substitute` when
   the replacement uses fewer LUTs than the cone frees (``gain > 0``;
   ``zero_gain`` accepts break-even restructurings too).

Every committed replacement computes the collapsed cone function
exactly, so the pass is equivalence-preserving by construction; the
test suite additionally verifies results by word-parallel simulation
against the source AIG.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..cuts import klut_cone_table
from ..networks.aig import Aig
from ..networks.klut import KLutNetwork
from ..networks.transforms import cleanup_dangling_klut
from ..truthtable import TruthTable
from .library import synthesize_structure
from .mffc import collect_mffc

__all__ = ["LutResynReport", "lut_resynthesize"]


@dataclass
class LutResynReport:
    """Counters collected by one LUT-MFFC resynthesis pass."""

    luts_before: int = 0
    luts_after: int = 0
    nodes_visited: int = 0
    cones_evaluated: int = 0
    collapsed: int = 0
    decomposed: int = 0
    constants_folded: int = 0
    wires_folded: int = 0
    zero_gain_applied: int = 0
    estimated_gain: int = 0
    total_time: float = 0.0

    def as_details(self) -> dict[str, float]:
        """Flat numeric view for per-pass statistics."""
        return {
            "nodes_visited": float(self.nodes_visited),
            "cones_evaluated": float(self.cones_evaluated),
            "collapsed": float(self.collapsed),
            "decomposed": float(self.decomposed),
            "constants_folded": float(self.constants_folded),
            "wires_folded": float(self.wires_folded),
            "zero_gain_applied": float(self.zero_gain_applied),
            "estimated_gain": float(self.estimated_gain),
        }


def _decompose_cost(table: TruthTable, k: int) -> tuple[KLutNetwork, int]:
    """Re-map a collapsed function into LUTs of arity <= k (not spliced yet).

    The function is synthesised into a small AIG structure by the shared
    decomposition synthesiser and run through the multi-pass mapper; the
    returned miniature network is spliced into the host only if its LUT
    count wins against the freed cone.
    """
    from ..networks.mapping import technology_map

    mini = Aig("lutmffc_cone")
    pi_literals = [mini.add_pi() for _ in range(table.num_vars)]
    structure = synthesize_structure(table)
    mini.add_po(structure.instantiate(mini, pi_literals))
    result = technology_map(mini, k=k)
    return result.network, result.network.num_luts


def _splice(work: KLutNetwork, sub: KLutNetwork, leaves: list[int]) -> int:
    """Copy a miniature mapped cone into ``work``; returns the new root node.

    ``sub`` has exactly one PO; its PIs map positionally onto ``leaves``.
    A negated PO is absorbed into the root LUT's function (the host
    network has no complemented edges).
    """
    node_map: dict[int, int] = {}
    for pi_node, leaf in zip(sub.pis, leaves):
        node_map[pi_node] = leaf
    root_node, root_negated = sub.pos[0]
    for lut in sub.topological_order():
        function = sub.lut_function(lut)
        if lut == root_node and root_negated:
            function = ~function
        fanins = []
        for fanin in sub.lut_fanins(lut):
            mapped = node_map.get(fanin)
            if mapped is None:  # a constant node pulled in by the mapper
                mapped = work.constant_node(sub.constant_value(fanin))
                node_map[fanin] = mapped
            fanins.append(mapped)
        node_map[lut] = work.add_lut(fanins, function)
    return node_map[root_node]


def lut_resynthesize(
    network: KLutNetwork,
    k: int | None = None,
    max_leaves: int = 10,
    max_cone: int = 32,
    zero_gain: bool = False,
) -> tuple[KLutNetwork, LutResynReport]:
    """One MFFC-resynthesis pass over a copy of a mapped network.

    ``k`` bounds the fan-in of every LUT the pass creates; it defaults
    to the network's current maximum fan-in (so resynthesis never
    exceeds the mapper's LUT size).  Cones wider than ``max_leaves``
    boundary inputs or larger than ``max_cone`` LUTs are skipped.
    Returns the resynthesised, dangling-cleaned network and a report.
    """
    if max_leaves < 2:
        raise ValueError("max_leaves must be at least 2")
    start = time.perf_counter()
    work = network.clone()
    effective_k = k if k is not None else max(2, work.max_fanin_size())
    if effective_k < 2:
        raise ValueError("LUT size k must be at least 2")
    report = LutResynReport(luts_before=work.num_luts)
    dead: set[int] = set()
    # References held by already-committed (dead, not-yet-cleaned) cones,
    # per referenced node.  Subtracting them from the maintained counts
    # keeps later MFFCs exact within one pass: a dead cone must not pin
    # the fanin logic it shares with a live cone.
    dead_refs: dict[int, int] = {}

    def live_count(member: int) -> int:
        return work.fanout_count(member) - dead_refs.get(member, 0)

    for node in work.topological_order():
        if node in dead:
            continue
        if live_count(node) == 0:
            continue  # dangling (or referenced only by dead cones)
        report.nodes_visited += 1
        mffc = collect_mffc(work, node, max_size=max_cone, fanout_count=live_count)
        if mffc is None or len(mffc) < 2:
            continue
        leaves: list[int] = []
        for member in mffc:
            for fanin in work.lut_fanins(member):
                if fanin not in mffc and not work.is_constant(fanin) and fanin not in leaves:
                    leaves.append(fanin)
        if len(leaves) > max_leaves:
            continue
        leaves.sort()
        # The MFFC boundary always cuts the cone (every non-member fanin
        # of a member is a leaf), so the strict walker cannot raise here.
        table = klut_cone_table(work, node, leaves)
        report.cones_evaluated += 1
        shrunk, kept = table.shrink_to_support()
        kept_leaves = [leaves[i] for i in kept]

        threshold = 0 if zero_gain else 1
        freed = len(mffc)
        if shrunk.num_vars == 0:
            # The whole cone computes a constant.
            gain = freed
            if gain < threshold:
                continue
            new_node = work.constant_node(bool(shrunk.bits & 1))
            report.constants_folded += 1
        elif shrunk.num_vars == 1 and shrunk.bits == 0b10:
            # The cone is a wire onto one leaf.
            gain = freed
            if gain < threshold:
                continue
            new_node = kept_leaves[0]
            report.wires_folded += 1
        elif shrunk.num_vars <= effective_k:
            # The collapsed support fits one LUT (an inverted wire lands
            # here too, as a 1-input LUT).
            gain = freed - 1
            if gain < threshold:
                continue
            new_node = work.add_lut(kept_leaves, shrunk)
            report.collapsed += 1
        else:
            # Too wide for one LUT: re-decompose and re-map the cone.
            sub, cost = _decompose_cost(shrunk, effective_k)
            gain = freed - cost
            if gain < threshold:
                continue
            new_node = _splice(work, sub, kept_leaves)
            report.decomposed += 1

        work.substitute(node, new_node)
        dead.update(mffc)
        for member in mffc:
            for fanin in work.lut_fanins(member):
                dead_refs[fanin] = dead_refs.get(fanin, 0) + 1
        report.estimated_gain += gain
        if gain == 0:
            report.zero_gain_applied += 1

    cleaned, _node_map = cleanup_dangling_klut(work)
    report.luts_after = cleaned.num_luts
    report.total_time = time.perf_counter() - start
    return cleaned, report
