"""Shared warm state: the exact-enumeration tables as one read-only blob.

Every spawned worker used to pay the bounded exhaustive enumeration
(:func:`~repro.rewriting.library._enumerate_exact`) during warm-up and
hold its own private copy of the resulting tables -- warm-up latency
and RSS both scaling with the pool size.  This module lets the parent
pay once: it serializes the tables of every arity into one flat binary
blob, publishes the blob through ``multiprocessing.shared_memory``
(falling back to a plain temp file the workers ``mmap``), and hands a
tiny picklable :class:`SharedLibraryDescriptor` to the pool initializer.
Workers *attach* -- :class:`SharedExactTable` is a ``Mapping``-shaped
bisect view straight over the shared buffer, so lookups never copy the
tables into worker-private memory.

Blob layout (native byte order -- producer and consumers always share a
machine): a stream of fixed 7-word ``uint32`` records, sorted by
function bits within each arity section::

    word 0   function bits
    word 1   kind (0 = leaf, 1 = AND)
    word 2   enumeration cost (AND count)
    word 3   leaf: variable literal / AND: fanin-a bits
    word 4   AND: fanin-a phase
    word 5   AND: fanin-b bits
    word 6   AND: fanin-b phase

which is exactly the ``("leaf", 0, literal)`` /
``("and", cost, bits_a, phase_a, bits_b, phase_b)`` tuples
:meth:`~repro.rewriting.library.RewriteLibrary._exact_entries` serves,
reconstructed on access.  The section table (arity, offset, count) rides
in the descriptor, not the blob.

The attach side unregisters the segment from the child's
``resource_tracker`` (or opens it with ``track=False`` where supported):
the parent owns the segment's lifetime and unlinks it at exit; a child
exiting must not tear it down under its siblings.
"""

from __future__ import annotations

import atexit
import mmap
import os
import tempfile
from array import array
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

__all__ = [
    "SharedLibraryDescriptor",
    "SharedExactTable",
    "encode_exact_entries",
    "build_shared_blob",
    "publish_shared_library",
    "attach_shared_library",
    "detach_shared_library",
    "unpublish_shared_library",
]

#: Arities whose exact tables are exported (everything the 4-input
#: library enumerates).
EXPORTED_ARITIES = (2, 3, 4)

#: ``uint32`` words per record.
_RECORD_WORDS = 7


def encode_exact_entries(entries: Mapping[int, tuple]) -> bytes:
    """Serialize one arity's enumeration table, sorted by function bits."""
    words = array("I")
    for bits in sorted(entries):
        record = entries[bits]
        if record[0] == "leaf":
            words.extend((bits, 0, 0, int(record[2]), 0, 0, 0))
        else:
            _, cost, bits_a, phase_a, bits_b, phase_b = record
            words.extend((bits, 1, int(cost), int(bits_a), int(phase_a), int(bits_b), int(phase_b)))
    return words.tobytes()


class SharedExactTable(Mapping[int, tuple]):
    """Read-only ``Mapping`` view over one arity section of the blob.

    Lookups bisect the sorted records directly in the shared buffer --
    no per-worker materialization, which is the whole point.  The
    library only ever calls ``get``/``__getitem__`` on these tables;
    iteration support exists for the round-trip tests.
    """

    def __init__(self, view: "memoryview | bytes") -> None:
        buffer = memoryview(view)
        if len(buffer) % (4 * _RECORD_WORDS):
            raise ValueError(f"table size {len(buffer)} is not a whole number of records")
        self._buffer = buffer
        self._words = buffer.cast("I")
        self._count = len(self._words) // _RECORD_WORDS

    def release(self) -> None:
        """Release the underlying buffer exports (detach-time cleanup)."""
        self._words.release()
        self._buffer.release()

    def _find(self, bits: int) -> int:
        low, high = 0, self._count
        while low < high:
            mid = (low + high) // 2
            if self._words[mid * _RECORD_WORDS] < bits:
                low = mid + 1
            else:
                high = mid
        if low < self._count and self._words[low * _RECORD_WORDS] == bits:
            return low
        return -1

    def __getitem__(self, bits: int) -> tuple:
        index = self._find(bits)
        if index < 0:
            raise KeyError(bits)
        base = index * _RECORD_WORDS
        words = self._words
        if words[base + 1] == 0:
            return ("leaf", 0, words[base + 3])
        return (
            "and",
            words[base + 2],
            words[base + 3],
            words[base + 4],
            words[base + 5],
            words[base + 6],
        )

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[int]:
        for index in range(self._count):
            yield self._words[index * _RECORD_WORDS]

    def __contains__(self, bits: object) -> bool:
        return isinstance(bits, int) and self._find(bits) >= 0


@dataclass(frozen=True)
class SharedLibraryDescriptor:
    """Picklable handle a worker needs to attach the published blob.

    ``kind`` is ``"shm"`` (a ``multiprocessing.shared_memory`` segment
    named ``name``) or ``"file"`` (an mmap-able file at path ``name``);
    ``sections`` holds one ``(num_vars, offset, length)`` triple per
    exported arity, in blob byte offsets.
    """

    kind: str
    name: str
    size: int
    sections: tuple[tuple[int, int, int], ...]


def build_shared_blob() -> tuple[bytes, tuple[tuple[int, int, int], ...]]:
    """Enumerate (in this process) and serialize every exported arity."""
    from .library import default_library

    library = default_library()
    chunks: list[bytes] = []
    sections: list[tuple[int, int, int]] = []
    offset = 0
    for num_vars in EXPORTED_ARITIES:
        encoded = encode_exact_entries(library._exact_entries(num_vars))
        sections.append((num_vars, offset, len(encoded)))
        chunks.append(encoded)
        offset += len(encoded)
    return b"".join(chunks), tuple(sections)


#: Parent-side handle of the published segment (kept alive for the
#: workers; closed and unlinked at exit) plus its descriptor.
_PUBLISHED: "tuple[Any, SharedLibraryDescriptor] | None" = None

#: Worker-side attachments (segment/mmap handles kept alive for the
#: installed table views) keyed by descriptor name.
_ATTACHED: dict[str, Any] = {}


def publish_shared_library() -> SharedLibraryDescriptor | None:
    """Publish the exact tables for worker pools; returns the descriptor.

    Idempotent per process (one segment serves every pool).  Returns
    ``None`` when no shared transport works -- callers pass that straight
    to the initializer and workers simply warm up locally, so losing
    shared memory degrades performance, never correctness.
    """
    global _PUBLISHED
    if _PUBLISHED is not None:
        return _PUBLISHED[1]
    try:
        blob, sections = build_shared_blob()
    except Exception:  # pragma: no cover - enumeration is deterministic
        return None
    handle: Any = None
    descriptor: SharedLibraryDescriptor | None = None
    try:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(create=True, size=max(1, len(blob)))
        segment.buf[: len(blob)] = blob
        handle = segment
        descriptor = SharedLibraryDescriptor("shm", segment.name, len(blob), sections)
    except Exception:
        try:
            fd, path = tempfile.mkstemp(prefix="repro-exact-", suffix=".bin")
            with os.fdopen(fd, "wb") as stream:
                stream.write(blob)
            handle = path
            descriptor = SharedLibraryDescriptor("file", path, len(blob), sections)
        except Exception:  # pragma: no cover - no shm AND no tmpdir
            return None
    _PUBLISHED = (handle, descriptor)
    return descriptor


def unpublish_shared_library() -> None:
    """Tear down the published segment (atexit; also used by tests)."""
    global _PUBLISHED
    published, _PUBLISHED = _PUBLISHED, None
    if published is None:
        return
    handle, descriptor = published
    if descriptor.kind == "shm":
        # Unlink first: the name disappears immediately and the memory
        # is reclaimed once the last map closes, even if close() below
        # balks at still-exported attach-side views.
        try:
            handle.unlink()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
        try:
            handle.close()
        except BufferError:
            # This process also attached the blob; the views go down
            # with the interpreter (detach_shared_library runs first at
            # normal exit).
            pass
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
    else:
        try:
            os.unlink(handle)
        except Exception:  # pragma: no cover - best-effort cleanup
            pass


atexit.register(unpublish_shared_library)


def _attach_buffer(descriptor: SharedLibraryDescriptor) -> "tuple[Any, memoryview] | None":
    """Open the published blob read-only; returns (handle, buffer)."""
    if descriptor.kind == "shm":
        if _PUBLISHED is not None and _PUBLISHED[1].name == descriptor.name:
            # Attaching in the publisher process itself (thread mode,
            # tests): reuse the existing handle instead of opening -- and
            # mis-registering -- a second map of our own segment.
            return None, memoryview(_PUBLISHED[0].buf)[: descriptor.size]
        from multiprocessing import shared_memory

        try:
            try:
                segment = shared_memory.SharedMemory(name=descriptor.name, track=False)
            except TypeError:  # Python < 3.13: no track parameter
                segment = shared_memory.SharedMemory(name=descriptor.name)
                # Work around the attach side registering the segment
                # with its own resource_tracker: the parent owns the
                # lifetime; a child exiting must not unlink it.
                try:
                    from multiprocessing import resource_tracker

                    resource_tracker.unregister(
                        getattr(segment, "_name", descriptor.name), "shared_memory"
                    )
                except Exception:  # pragma: no cover - tracker internals moved
                    pass
        except Exception:
            return None
        return segment, memoryview(segment.buf)[: descriptor.size]
    try:
        with open(descriptor.name, "rb") as stream:
            mapped = mmap.mmap(stream.fileno(), descriptor.size, access=mmap.ACCESS_READ)
    except Exception:
        return None
    return mapped, memoryview(mapped)


def attach_shared_library(descriptor: SharedLibraryDescriptor) -> bool:
    """Install the published tables into this process's default library.

    Returns ``True`` on success.  Any failure (segment already gone,
    platform without shared memory) leaves the library untouched -- the
    next ``_exact_entries`` call enumerates locally as before.
    """
    if descriptor.name in _ATTACHED:
        return True
    opened = _attach_buffer(descriptor)
    if opened is None:
        return False
    handle, buffer = opened
    from .library import default_library

    library = default_library()
    tables: list[SharedExactTable] = []
    for num_vars, offset, length in descriptor.sections:
        table = SharedExactTable(buffer[offset : offset + length])
        library._exact_by_arity[num_vars] = table
        tables.append(table)
    _ATTACHED[descriptor.name] = (handle, buffer, tables)
    return True


def detach_shared_library() -> None:
    """Drop every attached view and close the handles (atexit; tests).

    Shared tables are removed from the default library first (a later
    lookup simply re-enumerates locally), then the buffer exports are
    released innermost-first so the segment/mmap can close without
    ``BufferError`` noise at interpreter shutdown.
    """
    from .library import default_library

    library = default_library()
    for name, (handle, buffer, tables) in list(_ATTACHED.items()):
        for num_vars in [
            arity
            for arity, entries in library._exact_by_arity.items()
            if any(entries is table for table in tables)
        ]:
            del library._exact_by_arity[num_vars]
        for table in tables:
            table.release()
        buffer.release()
        try:
            if handle is not None:
                handle.close()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
        del _ATTACHED[name]


atexit.register(detach_shared_library)
