"""DAG-aware rewriting: NPN classes, structure library, passes, pipelines.

The subsystem restructures AIGs *before* (or between) SAT sweeps, the
way real flows interleave ABC's ``resyn2``-style rewriting with
fraiging: smaller networks mean fewer SAT queries and faster sweeps.

Layering:

* :mod:`~repro.rewriting.npn` -- exact NPN canonicalization of <=4-input
  functions (768 transforms, memoised);
* :mod:`~repro.rewriting.library` -- one precomputed AIG structure per
  NPN class (bounded exhaustive enumeration plus decomposition
  synthesis);
* :mod:`~repro.rewriting.mffc` -- maximum fanout-free cones, the gain
  budget of every replacement;
* :mod:`~repro.rewriting.rewrite` / :mod:`~repro.rewriting.balance` /
  :mod:`~repro.rewriting.refactor` -- the three restructuring passes;
* :mod:`~repro.rewriting.passes` -- the :class:`PassManager` running
  ABC-style scripts (``"rw; fraig; rw; fraig"``, ``"resyn2"``, ...)
  with per-pass statistics and optional CEC verification.
"""

from .npn import NpnTransform, npn_canonicalize, apply_npn_transform, npn_classes
from .library import AigStructure, RewriteLibrary, default_library, synthesize_structure
from .mffc import collect_mffc, mffc_size
from .rewrite import RewriteReport, rewrite
from .balance import BalanceReport, balance
from .refactor import RefactorReport, refactor
from .passes import (
    PassManager,
    PassStatistics,
    FlowStatistics,
    optimize,
    parse_script,
    PASS_NAMES,
    NAMED_SCRIPTS,
)

__all__ = [
    "NpnTransform",
    "npn_canonicalize",
    "apply_npn_transform",
    "npn_classes",
    "AigStructure",
    "RewriteLibrary",
    "default_library",
    "synthesize_structure",
    "collect_mffc",
    "mffc_size",
    "RewriteReport",
    "rewrite",
    "BalanceReport",
    "balance",
    "RefactorReport",
    "refactor",
    "PassManager",
    "PassStatistics",
    "FlowStatistics",
    "optimize",
    "parse_script",
    "PASS_NAMES",
    "NAMED_SCRIPTS",
]
