"""DAG-aware rewriting: NPN classes, structure library, passes, pipelines.

The subsystem restructures AIGs *before* (or between) SAT sweeps, the
way real flows interleave ABC's ``resyn2``-style rewriting with
fraiging: smaller networks mean fewer SAT queries and faster sweeps.

Layering:

* :mod:`~repro.rewriting.npn` -- exact NPN canonicalization of <=4-input
  functions (768 transforms, memoised);
* :mod:`~repro.rewriting.library` -- one precomputed AIG structure per
  NPN class (bounded exhaustive enumeration plus decomposition
  synthesis);
* :mod:`~repro.rewriting.mffc` -- maximum fanout-free cones, the gain
  budget of every replacement;
* :mod:`~repro.rewriting.rewrite` / :mod:`~repro.rewriting.balance` /
  :mod:`~repro.rewriting.refactor` -- the three AIG restructuring passes;
* :mod:`~repro.rewriting.klut_resyn` -- mapped-network (k-LUT) MFFC
  resynthesis, committed through the incremental
  :meth:`~repro.networks.klut.KLutNetwork.substitute`;
* :mod:`~repro.rewriting.choices` -- structural choice computation (the
  ``dch``-style ``choice`` pass): rewriting/refactoring run additively
  and the sweeper records proven equivalences as choice classes for
  choice-aware mapping;
* :mod:`~repro.rewriting.passes` -- the network-generic
  :class:`PassManager` running ABC-style scripts (``"rw; fraig"``,
  ``"resyn2"``, ``"map; lutmffc; cleanup"``, ...) with per-pass
  statistics, parse-time network-kind checking and optional
  verification.
"""

from .npn import NpnTransform, npn_canonicalize, apply_npn_transform, npn_classes
from .library import AigStructure, RewriteLibrary, default_library, synthesize_structure
from .mffc import collect_mffc, mffc_size
from .rewrite import RewriteReport, rewrite
from .balance import BalanceReport, balance
from .refactor import RefactorReport, refactor
from .choices import ChoiceReport, compute_choices
from .klut_resyn import LutResynReport, lut_resynthesize
from .passes import (
    PassManager,
    PassStatistics,
    FlowStatistics,
    optimize,
    parse_script,
    validate_script,
    PASS_NAMES,
    PASS_KINDS,
    NAMED_SCRIPTS,
)

__all__ = [
    "NpnTransform",
    "npn_canonicalize",
    "apply_npn_transform",
    "npn_classes",
    "AigStructure",
    "RewriteLibrary",
    "default_library",
    "synthesize_structure",
    "collect_mffc",
    "mffc_size",
    "RewriteReport",
    "rewrite",
    "BalanceReport",
    "balance",
    "RefactorReport",
    "refactor",
    "ChoiceReport",
    "compute_choices",
    "LutResynReport",
    "lut_resynthesize",
    "PassManager",
    "PassStatistics",
    "FlowStatistics",
    "optimize",
    "parse_script",
    "validate_script",
    "PASS_NAMES",
    "PASS_KINDS",
    "NAMED_SCRIPTS",
]
