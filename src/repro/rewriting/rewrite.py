"""DAG-aware cut rewriting (the ``rw`` pass).

The pass walks the network once in topological order.  For every AND
gate it enumerates the k-feasible cuts (k = 4), computes each cut's
function, looks up a precomputed replacement structure for the
function's NPN class, and prices the replacement *against the real
network*: the gain of a candidate is the size of the root's MFFC (the
gates a substitution frees) minus the number of gates the structure
would actually add given sharing with existing logic
(:meth:`~repro.networks.aig.Aig.find_and` dry-run, no mutation).  The
best candidate with positive gain (non-negative with ``zero_gain``) is
instantiated through the strashing constructor and committed with the
incremental :meth:`~repro.networks.aig.Aig.substitute`.

Cut bookkeeping is incremental, in the spirit of the PR-1 engine: each
node's cuts are merged from its *current* fanins' cut sets when the node
is visited, nodes created by a rewrite get cut sets at creation time,
and cones freed by a rewrite are tracked in a dead set so they are
neither revisited nor double-counted (a dead gate resurrected by
structural hashing is revived, and priced as a real cost).  Cut
functions are recomputed from the live structure with a bounded cone
walk, so stale cut leaves can never corrupt a replacement: a leaf that
has dropped out of the cone merely becomes a don't-care input.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..networks.aig import Aig
from ..networks.cuts import Cut
from ..networks.transforms import cleanup_dangling
from ..truthtable import TruthTable
from .library import AigStructure, RewriteLibrary, default_library
from .mffc import collect_mffc

__all__ = ["RewriteReport", "rewrite"]


@dataclass
class RewriteReport:
    """Counters collected by one rewrite pass."""

    gates_before: int = 0
    gates_after: int = 0
    nodes_visited: int = 0
    cuts_evaluated: int = 0
    rewrites_applied: int = 0
    zero_gain_applied: int = 0
    estimated_gain: int = 0
    dead_revived: int = 0
    total_time: float = 0.0

    def as_details(self) -> dict[str, float]:
        """Flat numeric view for per-pass statistics."""
        return {
            "nodes_visited": float(self.nodes_visited),
            "cuts_evaluated": float(self.cuts_evaluated),
            "rewrites_applied": float(self.rewrites_applied),
            "zero_gain_applied": float(self.zero_gain_applied),
            "estimated_gain": float(self.estimated_gain),
            "dead_revived": float(self.dead_revived),
        }


def _merge_cuts(aig: Aig, node: int, cut_db: dict[int, list[Cut]], cut_size: int, cut_limit: int) -> list[Cut]:
    """Cut set of one node from its current fanins' cut sets.

    Same merge-and-dominate rule as
    :func:`repro.networks.cuts.enumerate_cuts`, but driven by the *live*
    fanin pointers so it stays correct while the pass mutates the graph.
    The trivial cut ``{node}`` is always kept (it is what downstream
    nodes use to treat this node as a leaf).
    """
    fanin0, fanin1 = aig.fanins(node)
    node0, node1 = fanin0 >> 1, fanin1 >> 1
    merged: list[Cut] = []
    for cut0 in cut_db.get(node0, [Cut((node0,))]):
        for cut1 in cut_db.get(node1, [Cut((node1,))]):
            candidate = cut0.merge(cut1)
            if candidate.size > cut_size:
                continue
            if any(existing.dominates(candidate) for existing in merged):
                continue
            merged = [cut for cut in merged if not candidate.dominates(cut)]
            merged.append(candidate)
    merged.sort(key=lambda cut: cut.size)
    merged = merged[: cut_limit - 1]
    merged.append(Cut((node,)))
    return merged


def _cut_function(aig: Aig, root: int, leaves: tuple[int, ...], max_cone: int) -> TruthTable | None:
    """Function of ``root`` over ``leaves``, or ``None`` if the cut is unusable.

    Walks the live cone; a primary input reached without being listed as
    a leaf means the stored cut predates a substitution (stale), and a
    cone larger than ``max_cone`` is not worth pricing -- both bail out.
    Leaves that no longer sit in the cone simply become don't-care
    inputs, which keeps the substitution sound.
    """
    positions = {leaf: index for index, leaf in enumerate(leaves)}
    num_vars = len(leaves)
    tables: dict[int, TruthTable] = {leaf: TruthTable.variable(index, num_vars) for leaf, index in positions.items()}
    tables[0] = TruthTable.constant(False, num_vars)
    interior = 0
    stack: list[tuple[int, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if node in tables:
            continue
        if not aig.is_and(node):
            return None  # stale cut: walked past the boundary onto a PI
        fanin0, fanin1 = aig.fanins(node)
        if expanded:
            table0 = tables[fanin0 >> 1]
            table1 = tables[fanin1 >> 1]
            if fanin0 & 1:
                table0 = ~table0
            if fanin1 & 1:
                table1 = ~table1
            tables[node] = table0 & table1
            continue
        interior += 1
        if interior > max_cone:
            return None
        stack.append((node, True))
        stack.append((fanin0 >> 1, False))
        stack.append((fanin1 >> 1, False))
    return tables[root]


def _dry_run(
    aig: Aig,
    structure: AigStructure,
    leaf_literals: list[int],
    root: int,
    treat_as_new: set[int],
    dead: set[int],
) -> tuple[int, bool]:
    """Gates the structure would add, without mutating the network.

    Existing gates found by the strash lookup are free, *except* those in
    ``treat_as_new`` (the root's MFFC) or in the pass's dead set: reusing
    one keeps it alive, which costs exactly the gate the MFFC/dead
    accounting assumed freed, so it is priced as a new gate.  Returns
    ``(count, valid)``; ``valid`` is False when the replacement cone
    would contain the root itself (substituting would create a cycle).
    """
    created = 0
    literals: list[tuple[int, int] | None] = [(0, 0)] + [
        (literal >> 1, literal & 1) for literal in leaf_literals
    ]
    for fanin0, fanin1 in structure.gates:
        entry0 = literals[fanin0 >> 1]
        entry1 = literals[fanin1 >> 1]
        if entry0 is None or entry1 is None:
            created += 1
            literals.append(None)
            continue
        literal0 = 2 * entry0[0] + (entry0[1] ^ (fanin0 & 1))
        literal1 = 2 * entry1[0] + (entry1[1] ^ (fanin1 & 1))
        found = aig.find_and(literal0, literal1)
        if found is None:
            created += 1
            literals.append(None)
            continue
        node = found >> 1
        if node == root:
            return created, False
        if aig.is_and(node) and (node in treat_as_new or node in dead):
            created += 1
        literals.append((node, found & 1))
    output = literals[structure.output >> 1]
    if output is not None and output[0] == root:
        return created, False
    return created, True


def _instantiate(
    aig: Aig,
    structure: AigStructure,
    leaf_literals: list[int],
    cut_db: dict[int, list[Cut]] | None,
    cut_size: int,
    cut_limit: int,
) -> int:
    """Materialise the structure; register cut sets for created gates.

    ``cut_db = None`` skips the cut bookkeeping (the refactoring pass
    does not track cuts).
    """
    literals = [0] + list(leaf_literals)
    for fanin0, fanin1 in structure.gates:
        literal0 = literals[fanin0 >> 1] ^ (fanin0 & 1)
        literal1 = literals[fanin1 >> 1] ^ (fanin1 & 1)
        literal = aig.add_and(literal0, literal1)
        node = literal >> 1
        if cut_db is not None and aig.is_and(node) and node not in cut_db:
            cut_db[node] = _merge_cuts(aig, node, cut_db, cut_size, cut_limit)
        literals.append(literal)
    return literals[structure.output >> 1] ^ (structure.output & 1)


def _revive(aig: Aig, start: int, dead: set[int], cut_db: dict[int, list[Cut]] | None) -> int:
    """Un-kill every dead gate reachable through the fanins of ``start``.

    A rewrite's replacement cone may reuse gates that an earlier rewrite
    left for dead (structural hashing resurrects them); those gates --
    and their fanin cones, which they keep referenced -- are live again.
    Returns the number of revived gates.
    """
    revived = 0
    stack = [start]
    while stack:
        node = stack.pop()
        if not aig.is_and(node):
            continue
        changed = False
        if node in dead:
            dead.discard(node)
            revived += 1
            changed = True
        if cut_db is not None and node not in cut_db:
            cut_db[node] = [Cut((node,))]
            changed = True
        if changed:
            stack.extend(aig.fanin_nodes(node))
    return revived


def rewrite(
    aig: Aig,
    cut_size: int = 4,
    cut_limit: int = 8,
    zero_gain: bool = False,
    library: RewriteLibrary | None = None,
    max_cone: int = 32,
) -> tuple[Aig, RewriteReport]:
    """One DAG-aware rewriting pass over a copy of the network.

    Returns the rewritten (and dangling-cleaned) network plus a report.
    The result is functionally equivalent to the input by construction:
    every substitution replaces a node by a structure whose function over
    the cut leaves was computed exactly.
    """
    if cut_size < 2:
        raise ValueError("cut size must be at least 2")
    lib = library if library is not None else default_library()
    if cut_size > lib.num_vars:
        raise ValueError(f"cut size {cut_size} exceeds the library arity {lib.num_vars}")
    start = time.perf_counter()
    work = aig.clone()
    report = RewriteReport(gates_before=work.num_ands)

    cut_db: dict[int, list[Cut]] = {0: [Cut(())]}
    for pi in work.pis:
        cut_db[pi] = [Cut((pi,))]
    dead: set[int] = set()

    for node in work.topological_order():
        if node in dead:
            continue
        report.nodes_visited += 1
        cuts = _merge_cuts(work, node, cut_db, cut_size, cut_limit)
        cut_db[node] = cuts

        best_gain: int | None = None
        best: tuple[AigStructure, list[int], set[int]] | None = None
        for cut in cuts:
            if cut.leaves == (node,):
                continue
            table = _cut_function(work, node, cut.leaves, max_cone)
            if table is None:
                continue
            report.cuts_evaluated += 1
            mffc = collect_mffc(work, node, cut.leaves)
            assert mffc is not None
            structure = lib.structure(table)
            leaf_literals = [Aig.literal(leaf) for leaf in cut.leaves]
            created, valid = _dry_run(work, structure, leaf_literals, node, mffc, dead)
            if not valid:
                continue
            gain = len(mffc) - created
            if best_gain is None or gain > best_gain:
                best_gain = gain
                best = (structure, leaf_literals, mffc)

        threshold = 0 if zero_gain else 1
        if best is None or best_gain is None or best_gain < threshold:
            continue
        structure, leaf_literals, mffc = best
        new_literal = _instantiate(work, structure, leaf_literals, cut_db, cut_size, cut_limit)
        new_node = new_literal >> 1
        if new_node == node:
            continue  # the structure strashed back onto the node itself
        work.substitute(node, new_literal)
        dead.update(mffc)
        report.dead_revived += _revive(work, new_node, dead, cut_db)
        report.rewrites_applied += 1
        report.estimated_gain += best_gain
        if best_gain == 0:
            report.zero_gain_applied += 1

    cleaned, _literal_map = cleanup_dangling(work)
    report.gates_after = cleaned.num_ands
    report.total_time = time.perf_counter() - start
    return cleaned, report
