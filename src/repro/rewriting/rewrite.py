"""DAG-aware cut rewriting (the ``rw`` pass).

The pass walks the network once in topological order.  For every AND
gate it asks the shared priority-cut engine (:mod:`repro.cuts`) for the
k-feasible cuts (k = 4) *with their functions fused in* -- tables are
built bottom-up from the fanin cut tables through the
structural-signature cache, never by walking cones.  Each cut function
is looked up in the precomputed NPN structure library and the candidate
replacement is priced *against the real network*: the gain is the size
of the root's MFFC (the gates a substitution frees) minus the number of
gates the structure would actually add given sharing with existing
logic (:meth:`~repro.networks.aig.Aig.find_and` dry-run, no mutation).
The best candidate with positive gain (non-negative with ``zero_gain``)
is instantiated through the strashing constructor and committed with
the incremental :meth:`~repro.networks.aig.Aig.substitute`.

All cut bookkeeping that used to live privately in this module -- the
incremental cut database, dead-cone tracking, revival of gates
resurrected by structural hashing, staleness handling -- is the
engine's: the pass attaches a :class:`~repro.cuts.engine.CutEngine` to
the working network, substitution events invalidate exactly the rewired
gates' cut sets, gates created by a rewrite register their cuts at
creation time, and freed cones are killed/revived through the engine.
Fused tables stay sound across mutations because every committed
substitution is function-preserving (see :mod:`repro.cuts.engine`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..cuts import CutEngine
from ..networks.aig import Aig
from ..networks.transforms import cleanup_dangling
from .library import AigStructure, RewriteLibrary, default_library
from .mffc import collect_mffc

__all__ = ["RewriteReport", "rewrite"]

#: Alternatives recorded per node in choice-recording mode: the best
#: library structures of that many distinct cuts.  One is the sweet
#: spot on the bundled suite -- more alternatives inflate the class
#: cut sets until downstream priority-cut truncation starts dropping
#: the *subject* cuts, which costs depth (and whole-network snapshot
#: appending was worse still).
_RECORD_PER_NODE = 1


@dataclass
class RewriteReport:
    """Counters collected by one rewrite pass."""

    gates_before: int = 0
    gates_after: int = 0
    nodes_visited: int = 0
    cuts_evaluated: int = 0
    rewrites_applied: int = 0
    zero_gain_applied: int = 0
    estimated_gain: int = 0
    dead_revived: int = 0
    choices_recorded: int = 0
    cut_cache_hit_rate: float = 0.0
    total_time: float = 0.0

    def as_details(self) -> dict[str, float]:
        """Flat numeric view for per-pass statistics."""
        return {
            "nodes_visited": float(self.nodes_visited),
            "cuts_evaluated": float(self.cuts_evaluated),
            "rewrites_applied": float(self.rewrites_applied),
            "zero_gain_applied": float(self.zero_gain_applied),
            "estimated_gain": float(self.estimated_gain),
            "dead_revived": float(self.dead_revived),
            "choices_recorded": float(self.choices_recorded),
            "cut_cache_hit_rate": self.cut_cache_hit_rate,
        }


def _dry_run(
    aig: Aig,
    structure: AigStructure,
    leaf_literals: list[int],
    root: int,
    treat_as_new: set[int],
    engine: CutEngine,
) -> tuple[int, bool]:
    """Gates the structure would add, without mutating the network.

    Existing gates found by the strash lookup are free, *except* those in
    ``treat_as_new`` (the root's MFFC) or marked dead by the engine:
    reusing one keeps it alive, which costs exactly the gate the
    MFFC/dead accounting assumed freed, so it is priced as a new gate.
    Returns ``(count, valid)``; ``valid`` is False when the replacement
    cone would contain the root itself (substituting would create a
    cycle).
    """
    created = 0
    literals: list[tuple[int, int] | None] = [(0, 0)] + [
        (literal >> 1, literal & 1) for literal in leaf_literals
    ]
    for fanin0, fanin1 in structure.gates:
        entry0 = literals[fanin0 >> 1]
        entry1 = literals[fanin1 >> 1]
        if entry0 is None or entry1 is None:
            created += 1
            literals.append(None)
            continue
        literal0 = 2 * entry0[0] + (entry0[1] ^ (fanin0 & 1))
        literal1 = 2 * entry1[0] + (entry1[1] ^ (fanin1 & 1))
        found = aig.find_and(literal0, literal1)
        if found is None:
            created += 1
            literals.append(None)
            continue
        node = found >> 1
        if node == root:
            return created, False
        if aig.is_and(node) and (node in treat_as_new or engine.is_dead(node)):
            created += 1
        literals.append((node, found & 1))
    output = literals[structure.output >> 1]
    if output is not None and output[0] == root:
        return created, False
    return created, True


def _instantiate(
    aig: Aig,
    structure: AigStructure,
    leaf_literals: list[int],
    engine: CutEngine | None,
) -> int:
    """Materialise the structure; register cut sets for created gates.

    ``engine = None`` skips the cut bookkeeping (the refactoring pass
    does not track cuts).
    """
    literals = [0] + list(leaf_literals)
    for fanin0, fanin1 in structure.gates:
        literal0 = literals[fanin0 >> 1] ^ (fanin0 & 1)
        literal1 = literals[fanin1 >> 1] ^ (fanin1 & 1)
        literal = aig.add_and(literal0, literal1)
        if engine is not None:
            engine.note_created(literal >> 1)
        literals.append(literal)
    return literals[structure.output >> 1] ^ (structure.output & 1)


def rewrite(
    aig: Aig,
    cut_size: int = 4,
    cut_limit: int = 8,
    zero_gain: bool = False,
    library: RewriteLibrary | None = None,
    record_choices: bool = False,
) -> tuple[Aig, RewriteReport]:
    """One DAG-aware rewriting pass over a copy of the network.

    Returns the rewritten (and dangling-cleaned) network plus a report.
    The result is functionally equivalent to the input by construction:
    every substitution replaces a node by a structure whose function over
    the cut leaves was computed exactly.

    With ``record_choices`` the pass is *additive*: instead of
    substituting, the winning library structure is instantiated next to
    the subject logic and recorded as a structural choice of the visited
    node (:meth:`~repro.networks.aig.Aig.substitute` never runs, so the
    base network is untouched).  Candidates are recorded when their gain
    is non-negative -- an equal-size alternative with a different shape
    is exactly what gives the choice-aware mapper freedom.  No cleanup
    runs in this mode (it would renumber the subject graph); structures
    whose link was refused stay dangling and unlinked until the next
    cleanup-carrying pass prunes them.
    """
    if cut_size < 2:
        raise ValueError("cut size must be at least 2")
    lib = library if library is not None else default_library()
    if cut_size > lib.num_vars:
        raise ValueError(f"cut size {cut_size} exceeds the library arity {lib.num_vars}")
    start = time.perf_counter()
    work = aig.clone()
    report = RewriteReport(gates_before=work.num_ands)
    engine = CutEngine(work, k=cut_size, cut_limit=cut_limit, attach=True)

    try:
        for node in work.topological_order():
            if engine.is_dead(node):
                continue
            report.nodes_visited += 1
            cuts = engine.compute(node)

            best_gain: int | None = None
            best: tuple[AigStructure, list[int], set[int]] | None = None
            candidates: list[tuple[int, AigStructure, list[int]]] = []
            for cut in cuts:
                if cut.leaves == (node,) or cut.table is None:
                    continue
                report.cuts_evaluated += 1
                mffc = collect_mffc(work, node, cut.leaves)
                assert mffc is not None
                structure = lib.structure(cut.table)
                leaf_literals = [Aig.literal(leaf) for leaf in cut.leaves]
                created, valid = _dry_run(work, structure, leaf_literals, node, mffc, engine)
                if not valid:
                    continue
                gain = len(mffc) - created
                if record_choices and gain >= 0:
                    candidates.append((gain, structure, leaf_literals))
                if best_gain is None or gain > best_gain:
                    best_gain = gain
                    best = (structure, leaf_literals, mffc)

            if record_choices:
                # Additive mode: keep the subject logic and record the
                # best library structures (one per cut, highest gain
                # first) as choices of the visited node.  Links breaking
                # the collapsed-acyclicity invariant are dropped; their
                # gates stay dangling and unlinked (the mapper ignores
                # them, the next cleanup-carrying pass prunes them).
                candidates.sort(key=lambda entry: -entry[0])
                for _gain, structure, leaf_literals in candidates[:_RECORD_PER_NODE]:
                    new_literal = _instantiate(work, structure, leaf_literals, engine)
                    if new_literal >> 1 == node:
                        continue  # the structure strashed back onto the node
                    if work.add_choice(node, new_literal):
                        report.choices_recorded += 1
                continue

            threshold = 0 if zero_gain else 1
            if best is None or best_gain is None or best_gain < threshold:
                continue
            structure, leaf_literals, mffc = best
            new_literal = _instantiate(work, structure, leaf_literals, engine)
            new_node = new_literal >> 1
            if new_node == node:
                continue  # the structure strashed back onto the node itself
            work.substitute(node, new_literal)
            engine.kill(mffc)
            report.dead_revived += engine.revive_from(new_node)
            report.rewrites_applied += 1
            report.estimated_gain += best_gain
            if best_gain == 0:
                report.zero_gain_applied += 1
    finally:
        engine.detach()

    report.cut_cache_hit_rate = engine.cache.hit_rate
    if record_choices:
        # Additive mode never mutates the subject logic, and a cleanup
        # would rebuild (and renumber) the network -- the choice-aware
        # mapper's plain fallback relies on the subject graph staying
        # bit-identical to the input's.
        report.gates_after = work.num_ands
        report.total_time = time.perf_counter() - start
        return work, report
    cleaned, _literal_map = cleanup_dangling(work)
    report.gates_after = cleaned.num_ands
    report.total_time = time.perf_counter() - start
    return cleaned, report
