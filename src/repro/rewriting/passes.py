"""Optimization pass pipeline: named passes, scripts and the PassManager.

This is the flow layer on top of the individual transforms, in the
spirit of ABC scripts (``resyn2``: ``b; rw; rf; b; rw; rwz; b; rfz;
rwz; b``) and mockturtle flows: a *script* is a semicolon-separated
sequence of pass names, the :class:`PassManager` parses it, runs every
pass in order on a network, collects per-pass statistics (gate count,
depth, runtime, pass-specific counters) and can verify each step -- or
the whole flow -- with the combinational equivalence checker.

Registered passes
-----------------

===========  ==============================================================
``rw``       DAG-aware 4-cut rewriting (:func:`repro.rewriting.rewrite`)
``rwz``      rewriting, zero-gain replacements allowed
``rf``       MFFC refactoring (:func:`repro.rewriting.refactor`)
``rfz``      refactoring, zero-gain replacements allowed
``b``        AND-tree balancing (:func:`repro.rewriting.balance`)
``fraig``    baseline SAT sweeping (:class:`repro.sweeping.FraigSweeper`)
``stp``      STP-enhanced SAT sweeping (:class:`repro.sweeping.StpSweeper`)
``cp``       SAT-backed constant propagation
             (:func:`repro.sweeping.constant_prop.propagate_constant_candidates`)
``cleanup``  dangling-node removal
             (:func:`repro.networks.transforms.cleanup_dangling`)
===========  ==============================================================

plus the named scripts ``resyn`` / ``resyn2`` (ABC's classical recipes
built from the passes above) and ``rwsweep`` (``rw; fraig; rw; fraig``,
the interleaved rewriting/sweeping flow the paper-style harness uses as
a pre-pass).  Long names (``rewrite``, ``balance``, ``refactor``,
``constprop``) are accepted as aliases.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..networks.aig import Aig
from ..networks.transforms import cleanup_dangling
from ..sat.circuit import CircuitSolver
from ..simulation.patterns import PatternSet
from ..sweeping.cec import check_combinational_equivalence
from ..sweeping.constant_prop import propagate_constant_candidates
from ..sweeping.fraig import FraigSweeper
from ..sweeping.stp_sweeper import StpSweeper
from .balance import balance
from .library import RewriteLibrary
from .refactor import refactor
from .rewrite import rewrite

__all__ = [
    "PassStatistics",
    "FlowStatistics",
    "PassManager",
    "optimize",
    "parse_script",
    "PASS_NAMES",
    "NAMED_SCRIPTS",
]

#: Expansions of the named multi-pass scripts (applied recursively).
NAMED_SCRIPTS: dict[str, str] = {
    "resyn": "b; rw; rwz; b; rwz; b",
    "resyn2": "b; rw; rf; b; rw; rwz; b; rfz; rwz; b",
    "rwsweep": "rw; fraig; rw; fraig",
}

#: Long-name aliases for the single passes.
_ALIASES: dict[str, str] = {
    "rewrite": "rw",
    "balance": "b",
    "refactor": "rf",
    "constprop": "cp",
    "trim": "cleanup",
}

#: The canonical single-pass names.
PASS_NAMES: tuple[str, ...] = ("rw", "rwz", "rf", "rfz", "b", "fraig", "stp", "cp", "cleanup")


def parse_script(script: str | Sequence[str]) -> list[str]:
    """Expand a script into the flat list of canonical pass names.

    Accepts a semicolon/comma/newline-separated string (``"rw; fraig"``)
    or an already-split sequence; named scripts and aliases expand
    recursively.  Unknown names raise ``ValueError``.
    """
    if isinstance(script, str):
        tokens = [t.strip().lower() for t in script.replace(",", ";").replace("\n", ";").split(";")]
        tokens = [t for t in tokens if t]
    else:
        tokens = [str(t).strip().lower() for t in script if str(t).strip()]
    result: list[str] = []
    for token in tokens:
        token = _ALIASES.get(token, token)
        if token in NAMED_SCRIPTS:
            result.extend(parse_script(NAMED_SCRIPTS[token]))
        elif token in PASS_NAMES:
            result.append(token)
        else:
            known = sorted(set(PASS_NAMES) | set(NAMED_SCRIPTS) | set(_ALIASES))
            raise ValueError(f"unknown pass {token!r}; known passes/scripts: {', '.join(known)}")
    if not result:
        raise ValueError("empty optimization script")
    return result


@dataclass
class PassStatistics:
    """Statistics of one executed pass."""

    name: str
    gates_before: int = 0
    gates_after: int = 0
    depth_before: int = 0
    depth_after: int = 0
    total_time: float = 0.0
    verified: bool | None = None
    details: dict[str, float] = field(default_factory=dict)

    @property
    def gate_reduction(self) -> float:
        """Fraction of gates removed by this pass."""
        if self.gates_before == 0:
            return 0.0
        return 1.0 - self.gates_after / self.gates_before

    def __str__(self) -> str:
        verified = "" if self.verified is None else f"  cec={'ok' if self.verified else 'FAIL'}"
        return (
            f"{self.name:<8} gates {self.gates_before:>6} -> {self.gates_after:<6} "
            f"depth {self.depth_before:>3} -> {self.depth_after:<3} "
            f"{self.total_time:7.3f}s{verified}"
        )


@dataclass
class FlowStatistics:
    """Statistics of one full script run."""

    script: str
    passes: list[PassStatistics] = field(default_factory=list)
    gates_before: int = 0
    gates_after: int = 0
    depth_before: int = 0
    depth_after: int = 0
    total_time: float = 0.0
    verified: bool | None = None

    @property
    def gate_reduction(self) -> float:
        """Fraction of gates removed by the whole flow."""
        if self.gates_before == 0:
            return 0.0
        return 1.0 - self.gates_after / self.gates_before

    def __str__(self) -> str:
        lines = [
            f"script {self.script!r}: gates {self.gates_before} -> {self.gates_after} "
            f"({100 * self.gate_reduction:.1f}% reduction), depth {self.depth_before} -> "
            f"{self.depth_after}, total {self.total_time:.3f}s"
        ]
        lines.extend(f"  {stats}" for stats in self.passes)
        if self.verified is not None:
            lines.append(f"  equivalence vs input: {'ok' if self.verified else 'FAIL'}")
        return "\n".join(lines)


class PassManager:
    """Parse an optimization script and run it pass by pass.

    Parameters
    ----------
    script:
        Pass names separated by ``;`` (or a sequence), e.g.
        ``"rw; fraig; rw; fraig"``, ``"resyn2"``.
    seed, num_patterns, conflict_limit:
        Forwarded to the SAT-based passes (``fraig``, ``stp``, ``cp``).
    verify_each:
        Run the combinational equivalence checker after every pass and
        record the verdict in that pass's statistics (slow; meant for
        debugging and the fuzz tests).
    library:
        Shared :class:`~repro.rewriting.library.RewriteLibrary`; defaults
        to the process-wide library.
    """

    def __init__(
        self,
        script: str | Sequence[str] = "resyn2",
        seed: int = 1,
        num_patterns: int = 64,
        conflict_limit: int | None = 10_000,
        verify_each: bool = False,
        library: RewriteLibrary | None = None,
    ) -> None:
        self.script = script if isinstance(script, str) else "; ".join(script)
        self.passes = parse_script(script)
        self.seed = seed
        self.num_patterns = num_patterns
        self.conflict_limit = conflict_limit
        self.verify_each = verify_each
        self.library = library

    # ------------------------------------------------------------------

    def run(self, aig: Aig, verify: bool = False) -> tuple[Aig, FlowStatistics]:
        """Run every pass of the script on (a copy of) ``aig``.

        With ``verify`` the final result is checked against the input
        network with the CEC miter and the verdict recorded in
        ``FlowStatistics.verified``.
        """
        flow = FlowStatistics(
            script=self.script,
            gates_before=aig.num_ands,
            depth_before=aig.depth(),
        )
        start = time.perf_counter()
        current = aig
        for name in self.passes:
            stats = self._run_pass(name, current)
            result = stats.pop("result")
            pass_stats = stats.pop("stats")
            if self.verify_each:
                pass_stats.verified = bool(check_combinational_equivalence(current, result))
            flow.passes.append(pass_stats)
            current = result
        flow.gates_after = current.num_ands
        flow.depth_after = current.depth()
        flow.total_time = time.perf_counter() - start
        if verify:
            flow.verified = bool(check_combinational_equivalence(aig, current))
        return current, flow

    # ------------------------------------------------------------------

    def _run_pass(self, name: str, aig: Aig) -> dict:
        runner = self._runners()[name]
        started = time.perf_counter()
        result, details = runner(aig)
        elapsed = time.perf_counter() - started
        stats = PassStatistics(
            name=name,
            gates_before=aig.num_ands,
            gates_after=result.num_ands,
            depth_before=aig.depth(),
            depth_after=result.depth(),
            total_time=elapsed,
            details=details,
        )
        return {"result": result, "stats": stats}

    def _runners(self) -> dict[str, Callable[[Aig], tuple[Aig, dict[str, float]]]]:
        return {
            "rw": lambda aig: self._rewrite(aig, zero_gain=False),
            "rwz": lambda aig: self._rewrite(aig, zero_gain=True),
            "rf": lambda aig: self._refactor(aig, zero_gain=False),
            "rfz": lambda aig: self._refactor(aig, zero_gain=True),
            "b": self._balance,
            "fraig": self._fraig,
            "stp": self._stp,
            "cp": self._constant_prop,
            "cleanup": self._cleanup,
        }

    def _rewrite(self, aig: Aig, zero_gain: bool) -> tuple[Aig, dict[str, float]]:
        result, report = rewrite(aig, zero_gain=zero_gain, library=self.library)
        return result, report.as_details()

    def _refactor(self, aig: Aig, zero_gain: bool) -> tuple[Aig, dict[str, float]]:
        result, report = refactor(aig, zero_gain=zero_gain)
        return result, report.as_details()

    def _balance(self, aig: Aig) -> tuple[Aig, dict[str, float]]:
        result, report = balance(aig)
        return result, report.as_details()

    def _fraig(self, aig: Aig) -> tuple[Aig, dict[str, float]]:
        swept, stats = FraigSweeper(
            aig,
            num_patterns=self.num_patterns,
            seed=self.seed,
            conflict_limit=self.conflict_limit,
        ).run()
        return swept, {
            "merges": float(stats.merges),
            "sat_calls": float(stats.total_sat_calls),
            "sat_time": stats.sat_time,
        }

    def _stp(self, aig: Aig) -> tuple[Aig, dict[str, float]]:
        swept, stats = StpSweeper(
            aig,
            num_patterns=self.num_patterns,
            seed=self.seed,
            conflict_limit=self.conflict_limit,
        ).run()
        return swept, {
            "merges": float(stats.merges),
            "sat_calls": float(stats.total_sat_calls),
            "sat_time": stats.sat_time,
        }

    def _constant_prop(self, aig: Aig) -> tuple[Aig, dict[str, float]]:
        work = aig.clone()
        solver = CircuitSolver(work, conflict_limit=self.conflict_limit)
        patterns = PatternSet.random(work.num_pis, self.num_patterns, self.seed)
        report = propagate_constant_candidates(
            work, patterns, solver, conflict_limit=self.conflict_limit
        )
        cleaned, _literal_map = cleanup_dangling(work)
        return cleaned, {
            "proved_constant": float(report.num_proved),
            "substitutions": float(report.substitutions),
            "sat_calls": float(report.sat_calls),
        }

    def _cleanup(self, aig: Aig) -> tuple[Aig, dict[str, float]]:
        cleaned, _literal_map = cleanup_dangling(aig)
        return cleaned, {"removed": float(aig.num_ands - cleaned.num_ands)}


def optimize(
    aig: Aig,
    script: str | Sequence[str] = "resyn2",
    verify: bool = False,
    **manager_options,
) -> tuple[Aig, FlowStatistics]:
    """Convenience wrapper: run one script on a network.

    ``manager_options`` are forwarded to :class:`PassManager`.
    """
    manager = PassManager(script, **manager_options)
    return manager.run(aig, verify=verify)
