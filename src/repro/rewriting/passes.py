"""Optimization pass pipeline: named passes, scripts and the PassManager.

This is the flow layer on top of the individual transforms, in the
spirit of ABC scripts (``resyn2``: ``b; rw; rf; b; rw; rwz; b; rfz;
rwz; b``) and mockturtle flows: a *script* is a semicolon-separated
sequence of pass names, the :class:`PassManager` parses it, runs every
pass in order on a network, collects per-pass statistics (gate count,
depth, runtime, pass-specific counters) and can verify each step -- or
the whole flow -- against the input network.

The pipeline is **network-generic**: every pass declares which network
kind it accepts (``aig``, ``klut`` or ``any``) and which kind it
produces, scripts are kind-checked at parse time against the
:class:`~repro.networks.protocol.LogicNetwork` kinds, and the ``map``
pass switches the flow from the AIG to the mapped k-LUT network, where
the mapped-network passes (``lutmffc``) operate.  A script like
``"rw; fraig; map; lutmffc; cleanup"`` therefore runs rewriting and
sweeping on the AIG, maps, and resynthesises the mapped network -- all
in one flow with one statistics report.

Registered passes
-----------------

===========  =======  =====================================================
``rw``       aig      DAG-aware 4-cut rewriting (:func:`repro.rewriting.rewrite`)
``rwz``      aig      rewriting, zero-gain replacements allowed
``rf``       aig      MFFC refactoring (:func:`repro.rewriting.refactor`)
``rfz``      aig      refactoring, zero-gain replacements allowed
``b``        aig      AND-tree balancing (:func:`repro.rewriting.balance`)
``fraig``    aig      baseline SAT sweeping (:class:`repro.sweeping.FraigSweeper`)
``stp``      aig      STP-enhanced SAT sweeping (:class:`repro.sweeping.StpSweeper`)
``cp``       aig      SAT-backed constant propagation
``choice``   aig      structural choice computation (``dch``-style:
                      :func:`repro.rewriting.choices.compute_choices`);
                      a following ``map`` selects among the recorded
                      implementations automatically
``map``      aig>klut multi-pass k-LUT technology mapping
                      (:func:`repro.networks.mapping.technology_map`;
                      choice-aware on a choice-carrying network)
``lutmffc``  klut     mapped-network MFFC resynthesis
                      (:func:`repro.rewriting.klut_resyn.lut_resynthesize`)
``lutmffcz`` klut     LUT resynthesis, zero-gain replacements allowed
``cleanup``  any      dangling-node removal (kind-generic
                      :func:`repro.networks.transforms.cleanup_dangling`)
``ppart``    aig      partition-parallel meta-pass: ``ppart(rw;rf,
                      jobs=4)`` decomposes the AIG into boundary-frozen
                      regions, optimizes them across a worker pool and
                      merges the results back
                      (:func:`repro.partition.partition_optimize`)
===========  =======  =====================================================

plus the named scripts ``resyn`` / ``resyn2`` (ABC's classical recipes),
``rwsweep`` (``rw; fraig; rw; fraig``, the interleaved
rewriting/sweeping flow the paper-style harness uses as a pre-pass),
``maplut`` (``map; lutmffc; cleanup``, the mapped-network optimization
flow) and ``choicemap`` (``choice; map``, choice-aware mapping).  Long
names (``rewrite``, ``balance``, ``refactor``, ``constprop``,
``lutresyn``, ``dch``) are accepted as aliases.

Verification
------------

AIG-to-AIG steps are checked with the combinational equivalence checker
(complete).  As soon as a flow crosses into the mapped network, the
check against the AIG-typed reference is word-parallel simulation --
exhaustive for networks of up to 10 inputs, 256 random patterns
otherwise -- mirroring how the mapper itself is verified.  A CEC that
gives up at its conflict limit is reported as *unknown*
(``verify_status``), never as a failure or a pass.

Transactional execution
-----------------------

Every pass runs against a :class:`~repro.resilience.NetworkCheckpoint`
when the flow is transactional (``on_error="rollback"`` or
``verify_commit=True``): a pass that raises, exceeds its
:class:`~repro.resilience.Budget`, or fails the verification-gated
commit is rolled back to the last good network, marked ``failed`` in
its :class:`PassStatistics` with the reason, and the flow continues --
except on flow-deadline exhaustion, where the remaining passes are
marked ``skipped`` and the last good network is returned immediately.
With the default ``on_error="raise"`` the error propagates to the
caller instead (current behaviour).  ``pass_timeout`` gives every pass
its own wall-clock sub-budget; a per-pass timeout aborts only that
pass.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, ContextManager, Sequence, Union

from ..networks.aig import Aig
from ..networks.klut import KLutNetwork
from ..networks.protocol import network_kind
from ..networks.transforms import cleanup_dangling
from ..resilience import (
    Budget,
    BudgetExceeded,
    NetworkCheckpoint,
    VerificationFailed,
    simulation_equivalent,
)
from ..sat.circuit import CircuitSolver
from ..simulation.patterns import PatternSet
from ..sweeping.cec import check_combinational_equivalence
from ..sweeping.constant_prop import propagate_constant_candidates
from ..sweeping.fraig import FraigSweeper
from ..sweeping.stats import SweepStatistics
from ..sweeping.stp_sweeper import StpSweeper
from .balance import balance
from .klut_resyn import lut_resynthesize
from .library import RewriteLibrary
from .refactor import refactor
from .rewrite import rewrite

__all__ = [
    "PassStatistics",
    "FlowStatistics",
    "PassManager",
    "PpartSpec",
    "optimize",
    "parse_script",
    "parse_ppart",
    "pass_base_name",
    "validate_script",
    "PASS_NAMES",
    "PASS_KINDS",
    "NAMED_SCRIPTS",
]

#: Any network the pipeline operates on.
Network = Union[Aig, KLutNetwork]

#: Expansions of the named multi-pass scripts (applied recursively).
NAMED_SCRIPTS: dict[str, str] = {
    "resyn": "b; rw; rwz; b; rwz; b",
    "resyn2": "b; rw; rf; b; rw; rwz; b; rfz; rwz; b",
    "rwsweep": "rw; fraig; rw; fraig",
    "maplut": "map; lutmffc; cleanup",
    "choicemap": "choice; map",
}

#: Long-name aliases for the single passes.
_ALIASES: dict[str, str] = {
    "rewrite": "rw",
    "balance": "b",
    "refactor": "rf",
    "constprop": "cp",
    "trim": "cleanup",
    "lutresyn": "lutmffc",
    "dch": "choice",
}

#: The canonical single-pass names.
PASS_NAMES: tuple[str, ...] = (
    "rw",
    "rwz",
    "rf",
    "rfz",
    "b",
    "fraig",
    "stp",
    "cp",
    "choice",
    "map",
    "lutmffc",
    "lutmffcz",
    "cleanup",
)

#: Network-kind signature of every pass: ``(input_kind, output_kind)``
#: with input in {"aig", "klut", "any"} and output in {"aig", "klut",
#: "same"}.  ``validate_script`` threads the kind through a script.
PASS_KINDS: dict[str, tuple[str, str]] = {
    "rw": ("aig", "aig"),
    "rwz": ("aig", "aig"),
    "rf": ("aig", "aig"),
    "rfz": ("aig", "aig"),
    "b": ("aig", "aig"),
    "fraig": ("aig", "aig"),
    "stp": ("aig", "aig"),
    "cp": ("aig", "aig"),
    "choice": ("aig", "aig"),
    "map": ("aig", "klut"),
    "lutmffc": ("klut", "klut"),
    "lutmffcz": ("klut", "klut"),
    "cleanup": ("any", "same"),
    "ppart": ("aig", "aig"),
}


def _split_tokens(script: str) -> list[str]:
    """Split a script on ``;`` / ``,`` / newlines at parenthesis depth 0.

    Separators inside a ``ppart(...)`` argument list stay with their
    token; unbalanced parentheses raise ``ValueError``.
    """
    tokens: list[str] = []
    current: list[str] = []
    depth = 0
    for character in script:
        if character == "(":
            depth += 1
        elif character == ")":
            depth -= 1
            if depth < 0:
                raise ValueError(f"unbalanced ')' in script {script!r}")
        if character in ";,\n" and depth == 0:
            token = "".join(current).strip().lower()
            if token:
                tokens.append(token)
            current = []
        else:
            current.append(character)
    if depth != 0:
        raise ValueError(f"unbalanced '(' in script {script!r}")
    token = "".join(current).strip().lower()
    if token:
        tokens.append(token)
    return tokens


def pass_base_name(name: str) -> str:
    """The registered pass behind a (possibly parameterised) token.

    Plain passes are their own base; a meta-pass token like
    ``ppart(rw;rf,jobs=4)`` resolves to ``ppart``.
    """
    return name.split("(", 1)[0].strip()


def parse_script(script: str | Sequence[str]) -> list[str]:
    """Expand a script into the flat list of canonical pass names.

    Accepts a semicolon/comma/newline-separated string (``"rw; fraig"``)
    or an already-split sequence; named scripts and aliases expand
    recursively.  ``ppart(...)`` meta-pass tokens are validated and
    canonicalised but kept as single tokens (their inner script runs
    per partition, not in this flow).  Unknown names raise
    ``ValueError``.
    """
    if isinstance(script, str):
        tokens = _split_tokens(script)
    else:
        tokens = [str(t).strip().lower() for t in script if str(t).strip()]
    result: list[str] = []
    for token in tokens:
        if "(" in token:
            if pass_base_name(token) == "ppart":
                result.append(parse_ppart(token).canonical())
                continue
            raise ValueError(
                f"unknown pass {token!r}; only the ppart meta-pass takes arguments"
            )
        if token == "ppart":
            raise ValueError(
                "ppart needs arguments: ppart(<aig passes>, jobs=N"
                "[, max_gates=M, strategy=window|level, merge=substitute|choice])"
            )
        token = _ALIASES.get(token, token)
        if token in NAMED_SCRIPTS:
            result.extend(parse_script(NAMED_SCRIPTS[token]))
        elif token in PASS_NAMES:
            result.append(token)
        else:
            known = sorted(set(PASS_NAMES) | set(NAMED_SCRIPTS) | set(_ALIASES) | {"ppart(...)"})
            raise ValueError(f"unknown pass {token!r}; known passes/scripts: {', '.join(known)}")
    if not result:
        raise ValueError("empty optimization script")
    return result


@dataclass(frozen=True)
class PpartSpec:
    """Parsed form of one ``ppart(...)`` meta-pass token.

    ``passes`` is the flat canonical per-region script (aig-to-aig
    passes only, named scripts already expanded); the remaining fields
    are the partitioning knobs.  :meth:`canonical` renders the token in
    its normal form, which :func:`parse_script` emits -- so a parsed
    script round-trips through join / re-parse unchanged.
    """

    passes: tuple[str, ...]
    jobs: int = 1
    max_gates: int = 400
    strategy: str = "window"
    merge: str = "substitute"
    #: Per-region SAT solver window (``window=N``): how many sweep
    #: windows share one persistent solver inside each worker.  ``None``
    #: keeps the sweepers' own default.
    window: int | None = None
    #: Wire-batch byte budget (``batch=N``): regions are packed into
    #: worker batches of roughly this many payload bytes; ``0`` disables
    #: batching (one dispatch per region).  ``None`` keeps the driver
    #: default.
    batch: int | None = None

    def canonical(self) -> str:
        # The optional knobs are emitted only when set, so scripts
        # written before they existed render byte-identically.
        options = (
            f",jobs={self.jobs},max_gates={self.max_gates},"
            f"strategy={self.strategy},merge={self.merge}"
        )
        if self.window is not None:
            options += f",window={self.window}"
        if self.batch is not None:
            options += f",batch={self.batch}"
        return f"ppart({';'.join(self.passes)}{options})"


def _ppart_int(key: str, value: str, minimum: int) -> int:
    try:
        parsed = int(value)
    except ValueError:
        raise ValueError(f"ppart option {key}={value!r} is not an integer") from None
    if parsed < minimum:
        raise ValueError(f"ppart option {key} must be >= {minimum}, got {parsed}")
    return parsed


def parse_ppart(token: str) -> PpartSpec:
    """Parse and validate one ``ppart(...)`` token.

    Grammar: ``ppart(<passes and key=value options separated by , or
    ;>)`` where the passes form the per-region script (aliases and
    named scripts expand as usual, but only plain ``aig -> aig`` passes
    may remain -- the regions a worker optimizes are AIGs with a frozen
    boundary) and the options are ``jobs`` (worker count), ``max_gates``
    (region size cap), ``strategy`` (``window`` / ``level``), ``merge``
    (``substitute`` / ``choice``), ``window`` (per-region solver window,
    >= 1) and ``batch`` (wire-batch byte budget, 0 disables batching).
    Nested ``ppart`` is rejected.
    """
    text = token.strip().lower()
    if pass_base_name(text) != "ppart":
        raise ValueError(f"not a ppart token: {token!r}")
    rest = text[len("ppart") :].strip()
    if not (rest.startswith("(") and rest.endswith(")")):
        raise ValueError(
            "ppart needs arguments: ppart(<aig passes>, jobs=N"
            "[, max_gates=M, strategy=window|level, merge=substitute|choice])"
        )
    inner = rest[1:-1]
    if "(" in inner or ")" in inner:
        raise ValueError("ppart arguments cannot nest parentheses (nested ppart is not allowed)")
    pass_tokens: list[str] = []
    jobs, max_gates, strategy, merge = 1, 400, "window", "substitute"
    window: int | None = None
    batch: int | None = None
    for part in (p.strip() for p in inner.replace(";", ",").split(",")):
        if not part:
            continue
        if "=" in part:
            key, _, value = part.partition("=")
            key, value = key.strip(), value.strip()
            if key == "jobs":
                jobs = _ppart_int(key, value, 1)
            elif key == "max_gates":
                max_gates = _ppart_int(key, value, 2)
            elif key == "strategy":
                if value not in ("window", "level"):
                    raise ValueError(f"ppart strategy must be 'window' or 'level', got {value!r}")
                strategy = value
            elif key == "merge":
                if value not in ("substitute", "choice"):
                    raise ValueError(f"ppart merge must be 'substitute' or 'choice', got {value!r}")
                merge = value
            elif key == "window":
                window = _ppart_int(key, value, 1)
            elif key == "batch":
                batch = _ppart_int(key, value, 0)
            else:
                raise ValueError(
                    f"unknown ppart option {key!r} "
                    "(expected jobs, max_gates, strategy, merge, window, batch)"
                )
        else:
            pass_tokens.append(part)
    if not pass_tokens:
        raise ValueError("ppart needs at least one pass to run per region, e.g. ppart(rw;rf, jobs=4)")
    passes = parse_script(pass_tokens)
    for name in passes:
        base = pass_base_name(name)
        if base == "ppart":
            raise ValueError("ppart cannot be nested inside ppart")
        if PASS_KINDS[base] != ("aig", "aig"):
            raise ValueError(
                f"pass {name!r} cannot run inside ppart (plain aig-to-aig passes only)"
            )
    return PpartSpec(
        tuple(passes),
        jobs=jobs,
        max_gates=max_gates,
        strategy=strategy,
        merge=merge,
        window=window,
        batch=batch,
    )


def validate_script(passes: Sequence[str], start_kind: str = "aig") -> str:
    """Kind-check a parsed script; returns the kind of the final network.

    Each pass's declared input kind must match the kind the previous
    passes produce (``"rw"`` cannot follow ``"map"``; ``"lutmffc"``
    cannot run before it).  Parameterised ``ppart(...)`` tokens check as
    their registered base pass.  Raises ``ValueError`` with the
    offending pass and the kind mismatch spelled out.
    """
    kind = start_kind
    for name in passes:
        kinds = PASS_KINDS.get(pass_base_name(name))
        if kinds is None:
            raise ValueError(f"unknown pass {name!r}; known passes: {', '.join(PASS_NAMES)}")
        input_kind, output_kind = kinds
        if input_kind != "any" and input_kind != kind:
            hint = " (run 'map' first)" if input_kind == "klut" and kind == "aig" else ""
            raise ValueError(
                f"pass {name!r} expects a {input_kind} network but the flow "
                f"produces a {kind} network at this point{hint}"
            )
        if output_kind != "same":
            kind = output_kind
    return kind


@dataclass
class PassStatistics:
    """Statistics of one executed pass.

    ``gates_before`` / ``gates_after`` count the network's internal
    gates in its own representation -- AND nodes on an AIG, LUTs on a
    mapped network; ``kind`` records the representation the pass
    produced.  ``status`` is ``"ok"`` for a committed pass, ``"failed"``
    for one that raised / exceeded its budget / failed verification and
    was rolled back, and ``"skipped"`` for one never run (flow budget
    already exhausted, or its required network kind unavailable after an
    earlier rollback); ``failure`` carries the human-readable reason.
    ``verify_status`` is ``"ok"`` / ``"fail"`` / ``"unknown"`` when a
    per-pass verification ran (``unknown`` = the CEC gave up at its
    conflict limit -- explicitly not a failure).
    """

    name: str
    gates_before: int = 0
    gates_after: int = 0
    depth_before: int = 0
    depth_after: int = 0
    total_time: float = 0.0
    verified: bool | None = None
    kind: str = "aig"
    status: str = "ok"
    failure: str | None = None
    verify_status: str | None = None
    details: dict[str, float] = field(default_factory=dict)
    #: Per-region breakdown of a ``ppart`` meta-pass (``None`` for every
    #: other pass): one dict per region with its boundary sizes, merge
    #: status and the worker's per-partition SAT counters.
    partitions: list[dict[str, object]] | None = None

    @property
    def gate_reduction(self) -> float:
        """Fraction of gates removed by this pass."""
        if self.gates_before == 0:
            return 0.0
        return 1.0 - self.gates_after / self.gates_before

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable view (for the future service layer)."""
        result: dict[str, object] = {
            "name": self.name,
            "status": self.status,
            "failure": self.failure,
            "kind": self.kind,
            "gates_before": self.gates_before,
            "gates_after": self.gates_after,
            "depth_before": self.depth_before,
            "depth_after": self.depth_after,
            "total_time": self.total_time,
            "verified": self.verified,
            "verify_status": self.verify_status,
            "details": dict(self.details),
        }
        if self.partitions is not None:
            result["partitions"] = [dict(region) for region in self.partitions]
        return result

    def __str__(self) -> str:
        if self.verify_status is not None:
            labels = {"ok": "ok", "fail": "FAIL", "unknown": "unknown"}
            verified = f"  cec={labels.get(self.verify_status, self.verify_status)}"
        elif self.verified is not None:
            verified = f"  cec={'ok' if self.verified else 'FAIL'}"
        else:
            verified = ""
        unit = "" if self.kind == "aig" else f" {self.kind}"
        state = "" if self.status == "ok" else f"  [{self.status}: {self.failure}]"
        return (
            f"{self.name:<8} gates {self.gates_before:>6} -> {self.gates_after:<6} "
            f"depth {self.depth_before:>3} -> {self.depth_after:<3} "
            f"{self.total_time:7.3f}s{unit}{verified}{state}"
        )


@dataclass
class FlowStatistics:
    """Statistics of one full script run."""

    script: str
    passes: list[PassStatistics] = field(default_factory=list)
    gates_before: int = 0
    gates_after: int = 0
    depth_before: int = 0
    depth_after: int = 0
    total_time: float = 0.0
    verified: bool | None = None
    verify_status: str | None = None
    kind_before: str = "aig"
    kind_after: str = "aig"
    #: True when the flow's wall-clock budget ran out and the remaining
    #: passes were skipped (the returned network is the last good one).
    budget_exhausted: bool = False

    @property
    def gate_reduction(self) -> float:
        """Fraction of gates removed by the whole flow."""
        if self.gates_before == 0:
            return 0.0
        return 1.0 - self.gates_after / self.gates_before

    @property
    def failed_passes(self) -> list[PassStatistics]:
        """The passes that failed and were rolled back."""
        return [stats for stats in self.passes if stats.status == "failed"]

    @property
    def skipped_passes(self) -> list[PassStatistics]:
        """The passes that never ran."""
        return [stats for stats in self.passes if stats.status == "skipped"]

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable view (for the future service layer)."""
        return {
            "script": self.script,
            "gates_before": self.gates_before,
            "gates_after": self.gates_after,
            "depth_before": self.depth_before,
            "depth_after": self.depth_after,
            "total_time": self.total_time,
            "verified": self.verified,
            "verify_status": self.verify_status,
            "kind_before": self.kind_before,
            "kind_after": self.kind_after,
            "budget_exhausted": self.budget_exhausted,
            "passes": [stats.as_dict() for stats in self.passes],
        }

    def __str__(self) -> str:
        crossing = "" if self.kind_before == self.kind_after else f" [{self.kind_before} -> {self.kind_after}]"
        lines = [
            f"script {self.script!r}: gates {self.gates_before} -> {self.gates_after} "
            f"({100 * self.gate_reduction:.1f}% reduction), depth {self.depth_before} -> "
            f"{self.depth_after}, total {self.total_time:.3f}s{crossing}"
        ]
        lines.extend(f"  {stats}" for stats in self.passes)
        if self.budget_exhausted:
            lines.append("  flow budget exhausted: remaining passes skipped")
        if self.verify_status is not None:
            labels = {"ok": "ok", "fail": "FAIL", "unknown": "unknown"}
            lines.append(f"  equivalence vs input: {labels.get(self.verify_status, self.verify_status)}")
        elif self.verified is not None:
            lines.append(f"  equivalence vs input: {'ok' if self.verified else 'FAIL'}")
        return "\n".join(lines)


def _po_signatures(network: Network, patterns: PatternSet) -> list[int]:
    """Word-parallel PO signatures of either network kind."""
    from ..simulation.bitwise import (
        aig_po_signatures,
        klut_po_signatures,
        simulate_aig,
        simulate_klut_minterm,
    )

    if isinstance(network, KLutNetwork):
        return klut_po_signatures(network, simulate_klut_minterm(network, patterns))
    return aig_po_signatures(network, simulate_aig(network, patterns))


def _networks_equivalent(reference: Network, candidate: Network) -> bool | None:
    """Kind-generic equivalence verdict between two pipeline networks.

    Two AIGs go through the (complete) CEC miter; any pair involving a
    mapped network is compared by word-parallel simulation, exhaustively
    when the input count allows it and on 256 random patterns otherwise.
    Returns ``True`` / ``False`` for a definite verdict and ``None``
    when the CEC gave up at its conflict limit -- "unknown" must never
    be conflated with "not equivalent".
    """
    if isinstance(reference, Aig) and isinstance(candidate, Aig):
        outcome = check_combinational_equivalence(reference, candidate)
        if outcome.status == "undetermined":
            return None
        return outcome.equivalent
    if reference.num_pis != candidate.num_pis:
        return False
    if reference.num_pis <= 10:
        patterns = PatternSet.exhaustive(reference.num_pis)
    else:
        patterns = PatternSet.random(reference.num_pis, 256, seed=1)
    return _po_signatures(reference, patterns) == _po_signatures(candidate, patterns)


def _verify_status(verdict: bool | None) -> str:
    """Map a tri-state equivalence verdict onto its status label."""
    if verdict is None:
        return "unknown"
    return "ok" if verdict else "fail"


class PassManager:
    """Parse an optimization script and run it pass by pass.

    Parameters
    ----------
    script:
        Pass names separated by ``;`` (or a sequence), e.g.
        ``"rw; fraig; rw; fraig"``, ``"resyn2"``,
        ``"map; lutmffc; cleanup"``.  The script is kind-checked at
        construction time (an AIG pass cannot follow ``map``).
    seed, num_patterns, conflict_limit:
        Forwarded to the SAT-based passes (``fraig``, ``stp``, ``cp``).
    window_size:
        Persistent-solver window size forwarded to the sweeping passes
        (``fraig``, ``stp``, ``choice``): ``None`` keeps the default
        fresh-encode behaviour, ``1`` keeps one ``CircuitSolver`` alive
        for the whole sweep, ``N`` retires it every ``N`` windows.  The
        partition worker sets this so each region job holds exactly one
        solver window for its whole inner script.
    lut_size, cut_limit:
        LUT size and priority-cut limit of the ``map`` pass; the
        mapped-network passes inherit ``lut_size`` as their fan-in
        bound.  When ``lut_size`` is omitted, ``map`` uses k = 6 and the
        mapped-network passes bound themselves by the network's own
        maximum fan-in -- so a klut-only script on an externally mapped
        network never creates LUTs wider than the mapper did.
    verify_each:
        Verify every pass against its input network (CEC between AIGs,
        word-parallel simulation once the flow is mapped) and record the
        verdict in that pass's statistics (slow; meant for debugging and
        the fuzz tests).
    library:
        Shared :class:`~repro.rewriting.library.RewriteLibrary`; defaults
        to the process-wide library.
    on_error:
        ``"raise"`` (default) propagates a failing pass's error to the
        caller; ``"rollback"`` restores the last good network, records
        the pass as ``failed`` with the reason, and continues the flow
        (see the module docstring).
    verify_commit:
        Gate every pass's commit on a word-parallel simulation
        cross-check against its input (exhaustive for up to 10 PIs, 256
        random patterns otherwise); a mismatch rolls the pass back (with
        ``on_error="rollback"``) or raises
        :class:`~repro.resilience.VerificationFailed`.
    pass_timeout:
        Per-pass wall-clock ceiling in seconds; implemented as a
        deadline sub-budget, so it composes with a flow
        :class:`~repro.resilience.Budget` (the tighter deadline wins)
        and exceeding it aborts only the offending pass.
    partition_executor:
        :class:`~repro.partition.RegionExecutor` used by ``ppart(...)``
        meta-passes; defaults to inline execution for ``jobs=1`` and the
        process-wide warmed worker pool otherwise.
    """

    def __init__(
        self,
        script: str | Sequence[str] = "resyn2",
        seed: int = 1,
        num_patterns: int = 64,
        conflict_limit: int | None = 10_000,
        window_size: int | None = None,
        lut_size: int | None = None,
        cut_limit: int = 8,
        verify_each: bool = False,
        library: RewriteLibrary | None = None,
        on_error: str = "raise",
        verify_commit: bool = False,
        pass_timeout: float | None = None,
        partition_executor: Any | None = None,
    ) -> None:
        self.script = script if isinstance(script, str) else "; ".join(script)
        self.passes = parse_script(script)
        # Kind-check at construction: the script must compose from at
        # least one starting kind (run() re-validates against the actual
        # input).  A klut-only script ("lutmffc; cleanup") is legal for
        # callers holding an already-mapped network.  When neither start
        # works, the aig-start error is the meaningful one: the klut
        # retry trips over the first AIG pass, not the actual problem.
        try:
            validate_script(self.passes, "aig")
        except ValueError as aig_error:
            try:
                validate_script(self.passes, "klut")
            except ValueError:
                raise aig_error from None
        if on_error not in ("raise", "rollback"):
            raise ValueError(f"on_error must be 'raise' or 'rollback', got {on_error!r}")
        self.seed = seed
        self.num_patterns = num_patterns
        self.conflict_limit = conflict_limit
        self.window_size = window_size
        self.lut_size = lut_size
        self.cut_limit = cut_limit
        self.verify_each = verify_each
        self.library = library
        self.on_error = on_error
        self.verify_commit = verify_commit
        self.pass_timeout = pass_timeout
        self.partition_executor = partition_executor

    # ------------------------------------------------------------------

    def run(
        self,
        network: Network,
        verify: bool = False,
        budget: Budget | None = None,
        on_error: str | None = None,
        progress: Callable[[PassStatistics], None] | None = None,
    ) -> tuple[Network, FlowStatistics]:
        """Run every pass of the script on (a copy of) ``network``.

        The input may be an :class:`Aig` (the usual case) or an already
        mapped :class:`KLutNetwork` (for klut-only scripts); the script
        is re-validated against the actual input kind.  With ``verify``
        the final result is checked against the input network (see the
        module docstring for the verification semantics) and the verdict
        recorded in ``FlowStatistics.verified`` / ``verify_status``.

        ``budget`` bounds the whole flow (deadline, shared conflict
        pool, mutation cap); ``on_error`` overrides the constructor's
        error policy for this run.  With ``on_error="rollback"`` the
        returned network is always derived from committed passes only --
        a failing pass is rolled back and the flow continues (or, on
        flow-deadline exhaustion, returns early with the remaining
        passes marked ``skipped``).

        ``progress`` is invoked with each pass's finalized
        :class:`PassStatistics` as soon as the pass settles (committed,
        failed or skipped) -- the hook the synthesis service streams its
        per-pass NDJSON events from.  Exceptions raised by the callback
        propagate to the caller.
        """
        policy = self.on_error if on_error is None else on_error
        if policy not in ("raise", "rollback"):
            raise ValueError(f"on_error must be 'raise' or 'rollback', got {policy!r}")
        start_kind = network_kind(network)
        validate_script(self.passes, start_kind)
        flow = FlowStatistics(
            script=self.script,
            gates_before=network.num_gates,
            depth_before=network.depth(),
            kind_before=start_kind,
        )
        start = time.perf_counter()
        transactional = policy == "rollback" or self.verify_commit
        runners = self._runners()
        current: Network = network

        def settle(stats: PassStatistics) -> None:
            flow.passes.append(stats)
            if progress is not None:
                progress(stats)
        for name in self.passes:
            base = pass_base_name(name)
            input_kind = network_kind(current)
            stats = PassStatistics(
                name=name,
                kind=input_kind,
                gates_before=current.num_gates,
                gates_after=current.num_gates,
                depth_before=current.depth(),
                depth_after=current.depth(),
            )
            if flow.budget_exhausted:
                stats.status = "skipped"
                stats.failure = "flow budget exhausted by an earlier pass"
                settle(stats)
                continue
            required_kind = PASS_KINDS[base][0]
            if required_kind != "any" and required_kind != input_kind:
                stats.status = "skipped"
                stats.failure = (
                    f"requires a {required_kind} network but the flow holds a "
                    f"{input_kind} network (an earlier pass was rolled back)"
                )
                settle(stats)
                continue
            pass_budget = budget
            if self.pass_timeout is not None:
                pass_budget = (
                    budget.with_deadline(self.pass_timeout)
                    if budget is not None
                    else Budget(wall_clock=self.pass_timeout)
                )
            checkpoint = NetworkCheckpoint(current) if transactional else None
            started = time.perf_counter()
            try:
                if pass_budget is not None:
                    pass_budget.checkpoint(name)
                observe: ContextManager[object] = (
                    pass_budget.observe_mutations() if pass_budget is not None else nullcontext()
                )
                with observe:
                    if base == "ppart":
                        result, details, partitions = self._ppart(name, current, pass_budget)
                        stats.partitions = partitions
                    else:
                        result, details = runners[name](current, pass_budget)
                stats.details = details
                stats.kind = network_kind(result)
                stats.gates_after = result.num_gates
                stats.depth_after = result.depth()
                if self.verify_each:
                    verdict = _networks_equivalent(current, result)
                    stats.verified = verdict
                    stats.verify_status = _verify_status(verdict)
                if self.verify_commit and not simulation_equivalent(
                    current, result, num_patterns=max(256, self.num_patterns), seed=self.seed
                ):
                    stats.verified = False
                    stats.verify_status = "fail"
                    raise VerificationFailed(
                        f"pass {name!r}: result is not simulation-equivalent to its input"
                    )
            except Exception as error:
                stats.total_time = time.perf_counter() - started
                stats.status = "failed"
                if isinstance(error, BudgetExceeded):
                    stats.failure = f"budget: {error}"
                elif isinstance(error, VerificationFailed):
                    stats.failure = f"verification: {error}"
                else:
                    stats.failure = f"{type(error).__name__}: {error}"
                if checkpoint is not None:
                    current = checkpoint.restore()
                if policy == "raise":
                    settle(stats)
                    raise
                # Rolled back: the pass had no effect on the network.
                stats.kind = network_kind(current)
                stats.gates_after = current.num_gates
                stats.depth_after = current.depth()
                if isinstance(error, BudgetExceeded) and budget is not None and budget.expired:
                    # The *flow* deadline is gone (not just a per-pass
                    # timeout or the conflict pool): stop running passes.
                    flow.budget_exhausted = True
                settle(stats)
                continue
            else:
                if checkpoint is not None:
                    checkpoint.commit()
                stats.total_time = time.perf_counter() - started
                current = result
                settle(stats)
        flow.gates_after = current.num_gates
        flow.depth_after = current.depth()
        flow.kind_after = network_kind(current)
        flow.total_time = time.perf_counter() - start
        if verify:
            verdict = _networks_equivalent(network, current)
            flow.verified = verdict
            flow.verify_status = _verify_status(verdict)
        return current, flow

    # ------------------------------------------------------------------

    def _runners(
        self,
    ) -> dict[str, Callable[[Network, Budget | None], tuple[Network, dict[str, float]]]]:
        return {
            "rw": lambda network, budget: self._rewrite(network, zero_gain=False),
            "rwz": lambda network, budget: self._rewrite(network, zero_gain=True),
            "rf": lambda network, budget: self._refactor(network, zero_gain=False),
            "rfz": lambda network, budget: self._refactor(network, zero_gain=True),
            "b": lambda network, budget: self._balance(network),
            "fraig": self._fraig,
            "stp": self._stp,
            "cp": self._constant_prop,
            "choice": self._choice,
            "map": self._map,
            "lutmffc": lambda network, budget: self._lut_resyn(network, zero_gain=False),
            "lutmffcz": lambda network, budget: self._lut_resyn(network, zero_gain=True),
            "cleanup": lambda network, budget: self._cleanup(network),
        }

    @staticmethod
    def _as_aig(network: Network) -> Aig:
        assert isinstance(network, Aig), "kind-checked script guarantees an AIG here"
        return network

    @staticmethod
    def _as_klut(network: Network) -> KLutNetwork:
        assert isinstance(network, KLutNetwork), "kind-checked script guarantees a k-LUT network here"
        return network

    def _rewrite(self, network: Network, zero_gain: bool) -> tuple[Network, dict[str, float]]:
        result, report = rewrite(self._as_aig(network), zero_gain=zero_gain, library=self.library)
        return result, report.as_details()

    def _refactor(self, network: Network, zero_gain: bool) -> tuple[Network, dict[str, float]]:
        result, report = refactor(self._as_aig(network), zero_gain=zero_gain)
        return result, report.as_details()

    def _balance(self, network: Network) -> tuple[Network, dict[str, float]]:
        result, report = balance(self._as_aig(network))
        return result, report.as_details()

    def _fraig(self, network: Network, budget: Budget | None) -> tuple[Network, dict[str, float]]:
        swept, stats = FraigSweeper(
            self._as_aig(network),
            num_patterns=self.num_patterns,
            seed=self.seed,
            conflict_limit=self.conflict_limit,
            window_size=self.window_size,
            budget=budget,
        ).run()
        return swept, _sweep_details(stats)

    def _stp(self, network: Network, budget: Budget | None) -> tuple[Network, dict[str, float]]:
        swept, stats = StpSweeper(
            self._as_aig(network),
            num_patterns=self.num_patterns,
            seed=self.seed,
            conflict_limit=self.conflict_limit,
            window_size=self.window_size,
            budget=budget,
        ).run()
        return swept, _sweep_details(stats)

    def _constant_prop(self, network: Network, budget: Budget | None) -> tuple[Network, dict[str, float]]:
        work = self._as_aig(network).clone()
        solver = CircuitSolver(work, conflict_limit=self.conflict_limit, budget=budget)
        patterns = PatternSet.random(work.num_pis, self.num_patterns, self.seed)
        report = propagate_constant_candidates(
            work, patterns, solver, conflict_limit=self.conflict_limit
        )
        cleaned, _literal_map = cleanup_dangling(work)
        return cleaned, {
            "proved_constant": float(report.num_proved),
            "substitutions": float(report.substitutions),
            "sat_calls": float(report.sat_calls),
        }

    def _choice(self, network: Network, budget: Budget | None) -> tuple[Network, dict[str, float]]:
        from .choices import compute_choices

        result, report = compute_choices(
            self._as_aig(network),
            num_patterns=self.num_patterns,
            seed=self.seed,
            conflict_limit=self.conflict_limit,
            window_size=self.window_size,
            library=self.library,
            budget=budget,
        )
        return result, report.as_details()

    def _map(self, network: Network, budget: Budget | None) -> tuple[Network, dict[str, float]]:
        from ..networks.mapping import technology_map

        k = self.lut_size if self.lut_size is not None else 6
        result = technology_map(
            self._as_aig(network), k=k, cut_limit=self.cut_limit, budget=budget
        )
        return result.network, result.stats.as_details()

    def _lut_resyn(self, network: Network, zero_gain: bool) -> tuple[Network, dict[str, float]]:
        result, report = lut_resynthesize(
            self._as_klut(network), k=self.lut_size, zero_gain=zero_gain
        )
        return result, report.as_details()

    def _cleanup(self, network: Network) -> tuple[Network, dict[str, float]]:
        cleaned, _node_map = cleanup_dangling(network)
        return cleaned, {"removed": float(network.num_gates - cleaned.num_gates)}

    def _ppart(
        self, token: str, network: Network, budget: Budget | None
    ) -> tuple[Network, dict[str, float], list[dict[str, object]]]:
        """Run one ``ppart(...)`` meta-pass: partition, optimize, merge back."""
        from ..partition.parallel import partition_optimize

        spec = parse_ppart(token)
        result, report = partition_optimize(
            self._as_aig(network),
            "; ".join(spec.passes),
            jobs=spec.jobs,
            max_gates=spec.max_gates,
            strategy=spec.strategy,
            merge=spec.merge,
            seed=self.seed,
            num_patterns=self.num_patterns,
            conflict_limit=self.conflict_limit,
            budget=budget,
            executor=self.partition_executor,
            # The token's own knobs win; otherwise the flow-level solver
            # window applies inside each region worker too.
            window_size=spec.window if spec.window is not None else self.window_size,
            batch_bytes=spec.batch,
        )
        return result, report.as_details(), report.partition_dicts()


def _sweep_details(stats: SweepStatistics) -> dict[str, float]:
    """Flatten one sweep's counters into per-pass details.

    The CDCL-core counters (restarts, propagations, learned-clause GC,
    window reuse) are prefixed ``sat_`` so the service metrics can
    aggregate them across passes without knowing the sweeper type.
    """
    details = {
        "merges": float(stats.merges),
        "sat_calls": float(stats.total_sat_calls),
        "sat_time": stats.sat_time,
    }
    for key, value in stats.solver_statistics.items():
        details[f"sat_{key}"] = float(value)
    if "window_reuse_rate" in stats.extra:
        details["sat_window_reuse_rate"] = stats.extra["window_reuse_rate"]
    return details


def optimize(
    network: Network,
    script: str | Sequence[str] = "resyn2",
    verify: bool = False,
    **manager_options: Any,
) -> tuple[Network, FlowStatistics]:
    """Convenience wrapper: run one script on a network.

    ``manager_options`` are forwarded to :class:`PassManager`.  The
    result is whatever kind the script produces -- an :class:`Aig` for
    classical scripts, a :class:`KLutNetwork` for flows ending behind
    ``map`` (e.g. ``"map; lutmffc; cleanup"``).
    """
    manager = PassManager(script, **manager_options)
    return manager.run(network, verify=verify)
