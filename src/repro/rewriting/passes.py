"""Optimization pass pipeline: named passes, scripts and the PassManager.

This is the flow layer on top of the individual transforms, in the
spirit of ABC scripts (``resyn2``: ``b; rw; rf; b; rw; rwz; b; rfz;
rwz; b``) and mockturtle flows: a *script* is a semicolon-separated
sequence of pass names, the :class:`PassManager` parses it, runs every
pass in order on a network, collects per-pass statistics (gate count,
depth, runtime, pass-specific counters) and can verify each step -- or
the whole flow -- against the input network.

The pipeline is **network-generic**: every pass declares which network
kind it accepts (``aig``, ``klut`` or ``any``) and which kind it
produces, scripts are kind-checked at parse time against the
:class:`~repro.networks.protocol.LogicNetwork` kinds, and the ``map``
pass switches the flow from the AIG to the mapped k-LUT network, where
the mapped-network passes (``lutmffc``) operate.  A script like
``"rw; fraig; map; lutmffc; cleanup"`` therefore runs rewriting and
sweeping on the AIG, maps, and resynthesises the mapped network -- all
in one flow with one statistics report.

Registered passes
-----------------

===========  =======  =====================================================
``rw``       aig      DAG-aware 4-cut rewriting (:func:`repro.rewriting.rewrite`)
``rwz``      aig      rewriting, zero-gain replacements allowed
``rf``       aig      MFFC refactoring (:func:`repro.rewriting.refactor`)
``rfz``      aig      refactoring, zero-gain replacements allowed
``b``        aig      AND-tree balancing (:func:`repro.rewriting.balance`)
``fraig``    aig      baseline SAT sweeping (:class:`repro.sweeping.FraigSweeper`)
``stp``      aig      STP-enhanced SAT sweeping (:class:`repro.sweeping.StpSweeper`)
``cp``       aig      SAT-backed constant propagation
``choice``   aig      structural choice computation (``dch``-style:
                      :func:`repro.rewriting.choices.compute_choices`);
                      a following ``map`` selects among the recorded
                      implementations automatically
``map``      aig>klut multi-pass k-LUT technology mapping
                      (:func:`repro.networks.mapping.technology_map`;
                      choice-aware on a choice-carrying network)
``lutmffc``  klut     mapped-network MFFC resynthesis
                      (:func:`repro.rewriting.klut_resyn.lut_resynthesize`)
``lutmffcz`` klut     LUT resynthesis, zero-gain replacements allowed
``cleanup``  any      dangling-node removal (kind-generic
                      :func:`repro.networks.transforms.cleanup_dangling`)
===========  =======  =====================================================

plus the named scripts ``resyn`` / ``resyn2`` (ABC's classical recipes),
``rwsweep`` (``rw; fraig; rw; fraig``, the interleaved
rewriting/sweeping flow the paper-style harness uses as a pre-pass),
``maplut`` (``map; lutmffc; cleanup``, the mapped-network optimization
flow) and ``choicemap`` (``choice; map``, choice-aware mapping).  Long
names (``rewrite``, ``balance``, ``refactor``, ``constprop``,
``lutresyn``, ``dch``) are accepted as aliases.

Verification
------------

AIG-to-AIG steps are checked with the combinational equivalence checker
(complete).  As soon as a flow crosses into the mapped network, the
check against the AIG-typed reference is word-parallel simulation --
exhaustive for networks of up to 10 inputs, 256 random patterns
otherwise -- mirroring how the mapper itself is verified.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence, Union

from ..networks.aig import Aig
from ..networks.klut import KLutNetwork
from ..networks.protocol import network_kind
from ..networks.transforms import cleanup_dangling
from ..sat.circuit import CircuitSolver
from ..simulation.patterns import PatternSet
from ..sweeping.cec import check_combinational_equivalence
from ..sweeping.constant_prop import propagate_constant_candidates
from ..sweeping.fraig import FraigSweeper
from ..sweeping.stp_sweeper import StpSweeper
from .balance import balance
from .klut_resyn import lut_resynthesize
from .library import RewriteLibrary
from .refactor import refactor
from .rewrite import rewrite

__all__ = [
    "PassStatistics",
    "FlowStatistics",
    "PassManager",
    "optimize",
    "parse_script",
    "validate_script",
    "PASS_NAMES",
    "PASS_KINDS",
    "NAMED_SCRIPTS",
]

#: Any network the pipeline operates on.
Network = Union[Aig, KLutNetwork]

#: Expansions of the named multi-pass scripts (applied recursively).
NAMED_SCRIPTS: dict[str, str] = {
    "resyn": "b; rw; rwz; b; rwz; b",
    "resyn2": "b; rw; rf; b; rw; rwz; b; rfz; rwz; b",
    "rwsweep": "rw; fraig; rw; fraig",
    "maplut": "map; lutmffc; cleanup",
    "choicemap": "choice; map",
}

#: Long-name aliases for the single passes.
_ALIASES: dict[str, str] = {
    "rewrite": "rw",
    "balance": "b",
    "refactor": "rf",
    "constprop": "cp",
    "trim": "cleanup",
    "lutresyn": "lutmffc",
    "dch": "choice",
}

#: The canonical single-pass names.
PASS_NAMES: tuple[str, ...] = (
    "rw",
    "rwz",
    "rf",
    "rfz",
    "b",
    "fraig",
    "stp",
    "cp",
    "choice",
    "map",
    "lutmffc",
    "lutmffcz",
    "cleanup",
)

#: Network-kind signature of every pass: ``(input_kind, output_kind)``
#: with input in {"aig", "klut", "any"} and output in {"aig", "klut",
#: "same"}.  ``validate_script`` threads the kind through a script.
PASS_KINDS: dict[str, tuple[str, str]] = {
    "rw": ("aig", "aig"),
    "rwz": ("aig", "aig"),
    "rf": ("aig", "aig"),
    "rfz": ("aig", "aig"),
    "b": ("aig", "aig"),
    "fraig": ("aig", "aig"),
    "stp": ("aig", "aig"),
    "cp": ("aig", "aig"),
    "choice": ("aig", "aig"),
    "map": ("aig", "klut"),
    "lutmffc": ("klut", "klut"),
    "lutmffcz": ("klut", "klut"),
    "cleanup": ("any", "same"),
}


def parse_script(script: str | Sequence[str]) -> list[str]:
    """Expand a script into the flat list of canonical pass names.

    Accepts a semicolon/comma/newline-separated string (``"rw; fraig"``)
    or an already-split sequence; named scripts and aliases expand
    recursively.  Unknown names raise ``ValueError``.
    """
    if isinstance(script, str):
        tokens = [t.strip().lower() for t in script.replace(",", ";").replace("\n", ";").split(";")]
        tokens = [t for t in tokens if t]
    else:
        tokens = [str(t).strip().lower() for t in script if str(t).strip()]
    result: list[str] = []
    for token in tokens:
        token = _ALIASES.get(token, token)
        if token in NAMED_SCRIPTS:
            result.extend(parse_script(NAMED_SCRIPTS[token]))
        elif token in PASS_NAMES:
            result.append(token)
        else:
            known = sorted(set(PASS_NAMES) | set(NAMED_SCRIPTS) | set(_ALIASES))
            raise ValueError(f"unknown pass {token!r}; known passes/scripts: {', '.join(known)}")
    if not result:
        raise ValueError("empty optimization script")
    return result


def validate_script(passes: Sequence[str], start_kind: str = "aig") -> str:
    """Kind-check a parsed script; returns the kind of the final network.

    Each pass's declared input kind must match the kind the previous
    passes produce (``"rw"`` cannot follow ``"map"``; ``"lutmffc"``
    cannot run before it).  Raises ``ValueError`` with the offending
    pass and the kind mismatch spelled out.
    """
    kind = start_kind
    for name in passes:
        kinds = PASS_KINDS.get(name)
        if kinds is None:
            raise ValueError(f"unknown pass {name!r}; known passes: {', '.join(PASS_NAMES)}")
        input_kind, output_kind = kinds
        if input_kind != "any" and input_kind != kind:
            hint = " (run 'map' first)" if input_kind == "klut" and kind == "aig" else ""
            raise ValueError(
                f"pass {name!r} expects a {input_kind} network but the flow "
                f"produces a {kind} network at this point{hint}"
            )
        if output_kind != "same":
            kind = output_kind
    return kind


@dataclass
class PassStatistics:
    """Statistics of one executed pass.

    ``gates_before`` / ``gates_after`` count the network's internal
    gates in its own representation -- AND nodes on an AIG, LUTs on a
    mapped network; ``kind`` records the representation the pass
    produced.
    """

    name: str
    gates_before: int = 0
    gates_after: int = 0
    depth_before: int = 0
    depth_after: int = 0
    total_time: float = 0.0
    verified: bool | None = None
    kind: str = "aig"
    details: dict[str, float] = field(default_factory=dict)

    @property
    def gate_reduction(self) -> float:
        """Fraction of gates removed by this pass."""
        if self.gates_before == 0:
            return 0.0
        return 1.0 - self.gates_after / self.gates_before

    def __str__(self) -> str:
        verified = "" if self.verified is None else f"  cec={'ok' if self.verified else 'FAIL'}"
        unit = "" if self.kind == "aig" else f" {self.kind}"
        return (
            f"{self.name:<8} gates {self.gates_before:>6} -> {self.gates_after:<6} "
            f"depth {self.depth_before:>3} -> {self.depth_after:<3} "
            f"{self.total_time:7.3f}s{unit}{verified}"
        )


@dataclass
class FlowStatistics:
    """Statistics of one full script run."""

    script: str
    passes: list[PassStatistics] = field(default_factory=list)
    gates_before: int = 0
    gates_after: int = 0
    depth_before: int = 0
    depth_after: int = 0
    total_time: float = 0.0
    verified: bool | None = None
    kind_before: str = "aig"
    kind_after: str = "aig"

    @property
    def gate_reduction(self) -> float:
        """Fraction of gates removed by the whole flow."""
        if self.gates_before == 0:
            return 0.0
        return 1.0 - self.gates_after / self.gates_before

    def __str__(self) -> str:
        crossing = "" if self.kind_before == self.kind_after else f" [{self.kind_before} -> {self.kind_after}]"
        lines = [
            f"script {self.script!r}: gates {self.gates_before} -> {self.gates_after} "
            f"({100 * self.gate_reduction:.1f}% reduction), depth {self.depth_before} -> "
            f"{self.depth_after}, total {self.total_time:.3f}s{crossing}"
        ]
        lines.extend(f"  {stats}" for stats in self.passes)
        if self.verified is not None:
            lines.append(f"  equivalence vs input: {'ok' if self.verified else 'FAIL'}")
        return "\n".join(lines)


def _po_signatures(network: Network, patterns: PatternSet) -> list[int]:
    """Word-parallel PO signatures of either network kind."""
    from ..simulation.bitwise import (
        aig_po_signatures,
        klut_po_signatures,
        simulate_aig,
        simulate_klut_minterm,
    )

    if isinstance(network, KLutNetwork):
        return klut_po_signatures(network, simulate_klut_minterm(network, patterns))
    return aig_po_signatures(network, simulate_aig(network, patterns))


def _networks_equivalent(reference: Network, candidate: Network) -> bool:
    """Kind-generic equivalence verdict between two pipeline networks.

    Two AIGs go through the (complete) CEC miter; any pair involving a
    mapped network is compared by word-parallel simulation, exhaustively
    when the input count allows it and on 256 random patterns otherwise.
    """
    if isinstance(reference, Aig) and isinstance(candidate, Aig):
        return bool(check_combinational_equivalence(reference, candidate))
    if reference.num_pis != candidate.num_pis:
        return False
    if reference.num_pis <= 10:
        patterns = PatternSet.exhaustive(reference.num_pis)
    else:
        patterns = PatternSet.random(reference.num_pis, 256, seed=1)
    return _po_signatures(reference, patterns) == _po_signatures(candidate, patterns)


class PassManager:
    """Parse an optimization script and run it pass by pass.

    Parameters
    ----------
    script:
        Pass names separated by ``;`` (or a sequence), e.g.
        ``"rw; fraig; rw; fraig"``, ``"resyn2"``,
        ``"map; lutmffc; cleanup"``.  The script is kind-checked at
        construction time (an AIG pass cannot follow ``map``).
    seed, num_patterns, conflict_limit:
        Forwarded to the SAT-based passes (``fraig``, ``stp``, ``cp``).
    lut_size, cut_limit:
        LUT size and priority-cut limit of the ``map`` pass; the
        mapped-network passes inherit ``lut_size`` as their fan-in
        bound.  When ``lut_size`` is omitted, ``map`` uses k = 6 and the
        mapped-network passes bound themselves by the network's own
        maximum fan-in -- so a klut-only script on an externally mapped
        network never creates LUTs wider than the mapper did.
    verify_each:
        Verify every pass against its input network (CEC between AIGs,
        word-parallel simulation once the flow is mapped) and record the
        verdict in that pass's statistics (slow; meant for debugging and
        the fuzz tests).
    library:
        Shared :class:`~repro.rewriting.library.RewriteLibrary`; defaults
        to the process-wide library.
    """

    def __init__(
        self,
        script: str | Sequence[str] = "resyn2",
        seed: int = 1,
        num_patterns: int = 64,
        conflict_limit: int | None = 10_000,
        lut_size: int | None = None,
        cut_limit: int = 8,
        verify_each: bool = False,
        library: RewriteLibrary | None = None,
    ) -> None:
        self.script = script if isinstance(script, str) else "; ".join(script)
        self.passes = parse_script(script)
        # Kind-check at construction: the script must compose from at
        # least one starting kind (run() re-validates against the actual
        # input).  A klut-only script ("lutmffc; cleanup") is legal for
        # callers holding an already-mapped network.  When neither start
        # works, the aig-start error is the meaningful one: the klut
        # retry trips over the first AIG pass, not the actual problem.
        try:
            validate_script(self.passes, "aig")
        except ValueError as aig_error:
            try:
                validate_script(self.passes, "klut")
            except ValueError:
                raise aig_error from None
        self.seed = seed
        self.num_patterns = num_patterns
        self.conflict_limit = conflict_limit
        self.lut_size = lut_size
        self.cut_limit = cut_limit
        self.verify_each = verify_each
        self.library = library

    # ------------------------------------------------------------------

    def run(self, network: Network, verify: bool = False) -> tuple[Network, FlowStatistics]:
        """Run every pass of the script on (a copy of) ``network``.

        The input may be an :class:`Aig` (the usual case) or an already
        mapped :class:`KLutNetwork` (for klut-only scripts); the script
        is re-validated against the actual input kind.  With ``verify``
        the final result is checked against the input network (see the
        module docstring for the verification semantics) and the verdict
        recorded in ``FlowStatistics.verified``.
        """
        start_kind = network_kind(network)
        validate_script(self.passes, start_kind)
        flow = FlowStatistics(
            script=self.script,
            gates_before=network.num_gates,
            depth_before=network.depth(),
            kind_before=start_kind,
        )
        start = time.perf_counter()
        current: Network = network
        for name in self.passes:
            result, pass_stats = self._run_pass(name, current)
            if self.verify_each:
                pass_stats.verified = _networks_equivalent(current, result)
            flow.passes.append(pass_stats)
            current = result
        flow.gates_after = current.num_gates
        flow.depth_after = current.depth()
        flow.kind_after = network_kind(current)
        flow.total_time = time.perf_counter() - start
        if verify:
            flow.verified = _networks_equivalent(network, current)
        return current, flow

    # ------------------------------------------------------------------

    def _run_pass(self, name: str, network: Network) -> tuple[Network, PassStatistics]:
        runner = self._runners()[name]
        gates_before = network.num_gates
        depth_before = network.depth()
        started = time.perf_counter()
        result, details = runner(network)
        elapsed = time.perf_counter() - started
        stats = PassStatistics(
            name=name,
            gates_before=gates_before,
            gates_after=result.num_gates,
            depth_before=depth_before,
            depth_after=result.depth(),
            total_time=elapsed,
            kind=network_kind(result),
            details=details,
        )
        return result, stats

    def _runners(self) -> dict[str, Callable[[Network], tuple[Network, dict[str, float]]]]:
        return {
            "rw": lambda network: self._rewrite(network, zero_gain=False),
            "rwz": lambda network: self._rewrite(network, zero_gain=True),
            "rf": lambda network: self._refactor(network, zero_gain=False),
            "rfz": lambda network: self._refactor(network, zero_gain=True),
            "b": self._balance,
            "fraig": self._fraig,
            "stp": self._stp,
            "cp": self._constant_prop,
            "choice": self._choice,
            "map": self._map,
            "lutmffc": lambda network: self._lut_resyn(network, zero_gain=False),
            "lutmffcz": lambda network: self._lut_resyn(network, zero_gain=True),
            "cleanup": self._cleanup,
        }

    def _rewrite(self, aig: Aig, zero_gain: bool) -> tuple[Aig, dict[str, float]]:
        result, report = rewrite(aig, zero_gain=zero_gain, library=self.library)
        return result, report.as_details()

    def _refactor(self, aig: Aig, zero_gain: bool) -> tuple[Aig, dict[str, float]]:
        result, report = refactor(aig, zero_gain=zero_gain)
        return result, report.as_details()

    def _balance(self, aig: Aig) -> tuple[Aig, dict[str, float]]:
        result, report = balance(aig)
        return result, report.as_details()

    def _fraig(self, aig: Aig) -> tuple[Aig, dict[str, float]]:
        swept, stats = FraigSweeper(
            aig,
            num_patterns=self.num_patterns,
            seed=self.seed,
            conflict_limit=self.conflict_limit,
        ).run()
        return swept, {
            "merges": float(stats.merges),
            "sat_calls": float(stats.total_sat_calls),
            "sat_time": stats.sat_time,
        }

    def _stp(self, aig: Aig) -> tuple[Aig, dict[str, float]]:
        swept, stats = StpSweeper(
            aig,
            num_patterns=self.num_patterns,
            seed=self.seed,
            conflict_limit=self.conflict_limit,
        ).run()
        return swept, {
            "merges": float(stats.merges),
            "sat_calls": float(stats.total_sat_calls),
            "sat_time": stats.sat_time,
        }

    def _constant_prop(self, aig: Aig) -> tuple[Aig, dict[str, float]]:
        work = aig.clone()
        solver = CircuitSolver(work, conflict_limit=self.conflict_limit)
        patterns = PatternSet.random(work.num_pis, self.num_patterns, self.seed)
        report = propagate_constant_candidates(
            work, patterns, solver, conflict_limit=self.conflict_limit
        )
        cleaned, _literal_map = cleanup_dangling(work)
        return cleaned, {
            "proved_constant": float(report.num_proved),
            "substitutions": float(report.substitutions),
            "sat_calls": float(report.sat_calls),
        }

    def _choice(self, aig: Aig) -> tuple[Aig, dict[str, float]]:
        from .choices import compute_choices

        result, report = compute_choices(
            aig,
            num_patterns=self.num_patterns,
            seed=self.seed,
            conflict_limit=self.conflict_limit,
            library=self.library,
        )
        return result, report.as_details()

    def _map(self, aig: Aig) -> tuple[KLutNetwork, dict[str, float]]:
        from ..networks.mapping import technology_map

        k = self.lut_size if self.lut_size is not None else 6
        result = technology_map(aig, k=k, cut_limit=self.cut_limit)
        return result.network, result.stats.as_details()

    def _lut_resyn(self, network: KLutNetwork, zero_gain: bool) -> tuple[KLutNetwork, dict[str, float]]:
        result, report = lut_resynthesize(network, k=self.lut_size, zero_gain=zero_gain)
        return result, report.as_details()

    def _cleanup(self, network: Network) -> tuple[Network, dict[str, float]]:
        cleaned, _node_map = cleanup_dangling(network)
        return cleaned, {"removed": float(network.num_gates - cleaned.num_gates)}


def optimize(
    network: Network,
    script: str | Sequence[str] = "resyn2",
    verify: bool = False,
    **manager_options,
) -> tuple[Network, FlowStatistics]:
    """Convenience wrapper: run one script on a network.

    ``manager_options`` are forwarded to :class:`PassManager`.  The
    result is whatever kind the script produces -- an :class:`Aig` for
    classical scripts, a :class:`KLutNetwork` for flows ending behind
    ``map`` (e.g. ``"map; lutmffc; cleanup"``).
    """
    manager = PassManager(script, **manager_options)
    return manager.run(network, verify=verify)
