"""Maximum fanout-free cones (MFFCs).

The MFFC of a node is the part of its fanin cone that is referenced
*only* through the node: exactly the gates that become dangling when the
node is substituted away.  DAG-aware rewriting prices a candidate
replacement as ``gain = |MFFC| - gates_added``, so the MFFC is the
"budget" a rewrite is allowed to spend.

The computation is the classical virtual-dereference walk: starting from
the root, each fanin's reference count is decremented as if its parent
were deleted; a count hitting zero recursively frees the fanin.  Counts
come from :meth:`repro.networks.aig.Aig.fanout_count` (O(1) per node,
including primary-output references), so collecting one MFFC costs
O(cone), never O(network).
"""

from __future__ import annotations

from typing import Iterable

from ..networks.aig import Aig

__all__ = ["collect_mffc", "mffc_size"]


def collect_mffc(
    aig: Aig,
    root: int,
    leaves: Iterable[int] = (),
    max_size: int | None = None,
) -> set[int] | None:
    """Gates freed when ``root`` is substituted away.

    The walk never crosses ``leaves`` (the cut boundary), primary inputs
    or the constant node; the root itself is always part of the cone (a
    substitution always frees it).  Reference counts include primary
    outputs, so a cone gate that also drives a PO is correctly kept.
    With ``max_size`` the walk aborts and returns ``None`` as soon as the
    cone exceeds the bound (used by refactoring to skip huge cones).
    """
    if not aig.is_and(root):
        raise ValueError(f"node {root} is not an AND gate")
    stop = set(leaves)
    mffc: set[int] = {root}
    remaining: dict[int, int] = {}
    stack = [root]
    while stack:
        node = stack.pop()
        for fanin in aig.fanin_nodes(node):
            if fanin in stop or not aig.is_and(fanin) or fanin in mffc:
                continue
            count = remaining.get(fanin)
            if count is None:
                count = aig.fanout_count(fanin)
            count -= 1
            remaining[fanin] = count
            if count == 0:
                mffc.add(fanin)
                if max_size is not None and len(mffc) > max_size:
                    return None
                stack.append(fanin)
    return mffc


def mffc_size(aig: Aig, root: int, leaves: Iterable[int] = ()) -> int:
    """Number of gates in the MFFC of ``root`` (bounded by ``leaves``)."""
    cone = collect_mffc(aig, root, leaves)
    assert cone is not None
    return len(cone)
