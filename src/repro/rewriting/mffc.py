"""Maximum fanout-free cones (MFFCs), network-generic.

The MFFC of a node is the part of its fanin cone that is referenced
*only* through the node: exactly the gates that become dangling when the
node is substituted away.  DAG-aware rewriting prices a candidate
replacement as ``gain = |MFFC| - gates_added``, so the MFFC is the
"budget" a rewrite is allowed to spend.

The computation is the classical virtual-dereference walk: starting from
the root, each fanin's reference count is decremented as if its parent
were deleted; a count hitting zero recursively frees the fanin.  It is
written against the :class:`~repro.networks.protocol.LogicNetwork`
read surface (``is_gate`` / ``gate_fanin_nodes`` / ``fanout_count``),
so the same walk serves AIG rewriting/refactoring and the mapped-network
(k-LUT) resynthesis pass.  Counts come from the network's O(1)
``fanout_count`` (including primary-output references), so collecting
one MFFC costs O(cone), never O(network).
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..networks.protocol import LogicNetwork

__all__ = ["collect_mffc", "mffc_size"]


def collect_mffc(
    network: LogicNetwork,
    root: int,
    leaves: Iterable[int] = (),
    max_size: int | None = None,
    fanout_count: Callable[[int], int] | None = None,
) -> set[int] | None:
    """Gates freed when ``root`` is substituted away.

    The walk never crosses ``leaves`` (the cut boundary), primary inputs
    or constant nodes; the root itself is always part of the cone (a
    substitution always frees it).  Reference counts include primary
    outputs, so a cone gate that also drives a PO is correctly kept.
    With ``max_size`` the walk aborts and returns ``None`` as soon as the
    cone exceeds the bound (used by refactoring to skip huge cones).
    ``fanout_count`` overrides the network's own O(1) counter -- passes
    that accumulate dangling cones between cleanups (the LUT
    resynthesis) discount references held by already-dead gates, so one
    committed cone does not shrink the MFFCs of later roots sharing its
    fanin logic.
    """
    if not network.is_gate(root):
        raise ValueError(f"node {root} is not an internal gate")
    count_of = fanout_count if fanout_count is not None else network.fanout_count
    stop = set(leaves)
    mffc: set[int] = {root}
    remaining: dict[int, int] = {}
    stack = [root]
    while stack:
        node = stack.pop()
        for fanin in network.gate_fanin_nodes(node):
            if fanin in stop or not network.is_gate(fanin) or fanin in mffc:
                continue
            count = remaining.get(fanin)
            if count is None:
                count = count_of(fanin)
            count -= 1
            remaining[fanin] = count
            if count == 0:
                mffc.add(fanin)
                if max_size is not None and len(mffc) > max_size:
                    return None
                stack.append(fanin)
    return mffc


def mffc_size(network: LogicNetwork, root: int, leaves: Iterable[int] = ()) -> int:
    """Number of gates in the MFFC of ``root`` (bounded by ``leaves``)."""
    cone = collect_mffc(network, root, leaves)
    assert cone is not None
    return len(cone)
