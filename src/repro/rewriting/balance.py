"""AND-tree balancing (the ``b`` pass).

AND is associative and commutative, so any maximal single-fanout tree of
non-complemented AND edges can be flattened into one n-ary conjunction
and rebuilt as a depth-minimal tree.  Following ABC's ``balance``, the
rebuild pairs the two shallowest operands first (the Huffman-style
greedy that minimises the depth of the resulting tree), which shortens
the critical path and -- through the strashing constructor -- often
shares gates between overlapping trees.

Tree boundaries are complemented edges, primary inputs, constants and
multi-fanout nodes (collapsing a shared node would duplicate its cone).
The pass is non-destructive: it returns a freshly built network
containing only the PO-reachable logic.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass

from ..networks.aig import Aig

__all__ = ["BalanceReport", "balance"]


@dataclass
class BalanceReport:
    """Counters collected by one balance pass."""

    gates_before: int = 0
    gates_after: int = 0
    depth_before: int = 0
    depth_after: int = 0
    trees_flattened: int = 0
    widest_tree: int = 0
    total_time: float = 0.0

    def as_details(self) -> dict[str, float]:
        """Flat numeric view for per-pass statistics."""
        return {
            "trees_flattened": float(self.trees_flattened),
            "widest_tree": float(self.widest_tree),
            "depth_before": float(self.depth_before),
            "depth_after": float(self.depth_after),
        }


def balance(aig: Aig) -> tuple[Aig, BalanceReport]:
    """Depth-balance every maximal AND tree of a network.

    Returns the balanced network (dangling logic dropped by
    construction) and a report.  The result is functionally equivalent:
    only associativity/commutativity of AND is used.
    """
    start = time.perf_counter()
    report = BalanceReport(
        gates_before=aig.num_ands,
        depth_before=aig.depth(),
    )
    balanced = Aig(aig.name)
    literal_map: dict[int, int] = {0: 0}
    for pi, name in zip(aig.pis, aig.pi_names):
        literal_map[pi] = balanced.add_pi(name)
    levels: dict[int, int] = {0: 0}
    for pi in balanced.pis:
        levels[pi] = 0

    def tree_leaves(root: int) -> list[int]:
        """Old-graph leaf literals of the maximal AND tree rooted at ``root``.

        Descends through non-complemented edges into single-fanout AND
        gates; everything else terminates a branch.
        """
        leaves: list[int] = []
        work = list(aig.fanins(root))
        while work:
            literal = work.pop()
            node = literal >> 1
            if literal & 1 == 0 and aig.is_and(node) and aig.fanout_count(node) == 1:
                work.extend(aig.fanins(node))
            else:
                leaves.append(literal)
        return leaves

    def build(root: int) -> int:
        """New-graph literal of old node ``root`` (iterative, memoised)."""
        pending = [root]
        while pending:
            node = pending[-1]
            if node in literal_map:
                pending.pop()
                continue
            leaves = tree_leaves(node)
            missing = [
                leaf >> 1 for leaf in leaves if (leaf >> 1) not in literal_map
            ]
            if missing:
                pending.extend(missing)
                continue
            pending.pop()
            report.trees_flattened += 1
            report.widest_tree = max(report.widest_tree, len(leaves))
            # Huffman-style shallowest-first pairing; the tie-break index
            # keeps the heap deterministic.
            heap: list[tuple[int, int, int]] = []
            for index, leaf in enumerate(leaves):
                mapped = literal_map[leaf >> 1] ^ (leaf & 1)
                heapq.heappush(heap, (levels.get(mapped >> 1, 0), index, mapped))
            counter = len(leaves)
            while len(heap) > 1:
                level_a, _, literal_a = heapq.heappop(heap)
                level_b, _, literal_b = heapq.heappop(heap)
                combined = balanced.add_and(literal_a, literal_b)
                node_index = combined >> 1
                if node_index not in levels:
                    levels[node_index] = max(level_a, level_b) + 1
                heapq.heappush(heap, (levels.get(node_index, 0), counter, combined))
                counter += 1
            literal_map[node] = heap[0][2] if heap else 1  # empty tree: constant true
        return literal_map[root]

    for po, name in zip(aig.pos, aig.po_names):
        node = po >> 1
        if aig.is_and(node):
            mapped = build(node)
        else:
            mapped = literal_map[node]
        balanced.add_po(mapped ^ (po & 1), name)

    report.gates_after = balanced.num_ands
    report.depth_after = balanced.depth()
    report.total_time = time.perf_counter() - start
    return balanced, report
