"""MFFC refactoring (the ``rf`` pass).

Where cut rewriting works on fixed 4-input windows, refactoring
collapses a node's *entire* maximum fanout-free cone -- up to
``max_leaves`` boundary inputs -- into one truth table and resynthesises
it from scratch with the decomposition synthesiser
(:func:`repro.rewriting.library.synthesize_structure`).  That catches
restructurings a 4-cut can never see (wide reconvergence, redundant
logic spanning many levels) at the price of a coarser search.  Like the
rewrite pass, a candidate is priced against the live network: gain is
the MFFC size minus the gates the new structure actually adds, and only
winning candidates (non-negative with ``zero_gain``) are committed via
the incremental substitute.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..cuts import CutEngine, aig_cone_table
from ..networks.aig import Aig
from ..networks.transforms import cleanup_dangling
from .library import synthesize_structure
from .mffc import collect_mffc
from .rewrite import _dry_run, _instantiate

__all__ = ["RefactorReport", "refactor"]


@dataclass
class RefactorReport:
    """Counters collected by one refactor pass."""

    gates_before: int = 0
    gates_after: int = 0
    nodes_visited: int = 0
    cones_evaluated: int = 0
    refactors_applied: int = 0
    zero_gain_applied: int = 0
    estimated_gain: int = 0
    choices_recorded: int = 0
    total_time: float = 0.0

    def as_details(self) -> dict[str, float]:
        """Flat numeric view for per-pass statistics."""
        return {
            "nodes_visited": float(self.nodes_visited),
            "cones_evaluated": float(self.cones_evaluated),
            "refactors_applied": float(self.refactors_applied),
            "zero_gain_applied": float(self.zero_gain_applied),
            "estimated_gain": float(self.estimated_gain),
            "choices_recorded": float(self.choices_recorded),
        }


def refactor(
    aig: Aig,
    max_leaves: int = 10,
    max_cone: int = 64,
    min_cone: int = 3,
    zero_gain: bool = False,
    record_choices: bool = False,
) -> tuple[Aig, RefactorReport]:
    """One MFFC-refactoring pass over a copy of the network.

    Cones smaller than ``min_cone`` gates are skipped (a 4-cut rewrite
    handles those better), as are cones wider than ``max_leaves`` inputs
    or larger than ``max_cone`` gates.  Returns the refactored, cleaned
    network and a report.

    With ``record_choices`` the pass is *additive* (see
    :func:`repro.rewriting.rewrite.rewrite`): the resynthesised cone is
    instantiated next to the subject logic and recorded as a structural
    choice of the cone root whenever its gain is non-negative; the base
    network is never mutated.
    """
    if max_leaves < 2:
        raise ValueError("max_leaves must be at least 2")
    start = time.perf_counter()
    work = aig.clone()
    report = RefactorReport(gates_before=work.num_ands)
    # The engine is used purely for its dead-cone/revival bookkeeping;
    # refactoring works on whole MFFCs and does not track cuts.
    engine = CutEngine(work, k=2, cut_limit=1, compute_tables=False)

    for node in work.topological_order():
        if engine.is_dead(node):
            continue
        report.nodes_visited += 1
        mffc = collect_mffc(work, node, max_size=max_cone)
        if mffc is None or len(mffc) < min_cone:
            continue
        leaves: list[int] = []
        for member in mffc:
            for fanin in work.fanin_nodes(member):
                if fanin not in mffc and not work.is_constant(fanin) and fanin not in leaves:
                    leaves.append(fanin)
        if len(leaves) > max_leaves:
            continue
        leaves.sort()
        # The MFFC boundary always cuts the cone (every non-member fanin
        # of a member is a leaf), so the strict walker cannot raise here.
        table = aig_cone_table(work, node, leaves)
        report.cones_evaluated += 1
        structure = synthesize_structure(table)
        leaf_literals = [Aig.literal(leaf) for leaf in leaves]
        created, valid = _dry_run(work, structure, leaf_literals, node, mffc, engine)
        if not valid:
            continue
        gain = len(mffc) - created
        threshold = 0 if zero_gain or record_choices else 1
        if gain < threshold:
            continue
        new_literal = _instantiate(work, structure, leaf_literals, None)
        new_node = new_literal >> 1
        if new_node == node:
            continue
        if record_choices:
            if work.add_choice(node, new_literal):
                report.choices_recorded += 1
            continue
        work.substitute(node, new_literal)
        engine.kill(mffc)
        engine.revive_from(new_node)
        report.refactors_applied += 1
        report.estimated_gain += gain
        if gain == 0:
            report.zero_gain_applied += 1

    if record_choices:
        # Additive mode: no cleanup -- the subject graph must stay
        # bit-identical (see repro.rewriting.rewrite).
        report.gates_after = work.num_ands
        report.total_time = time.perf_counter() - start
        return work, report
    cleaned, _literal_map = cleanup_dangling(work)
    report.gates_after = cleaned.num_ands
    report.total_time = time.perf_counter() - start
    return cleaned, report
